//! Synthetic hourly carbon-intensity generation.
//!
//! Substitution note (see `DESIGN.md`): the paper built Fig. 2 from a grid
//! emissions data provider; we cannot redistribute that data, so this
//! module synthesizes traces with the same statistical structure — a
//! diurnal demand shape with an optional midday solar dip, an AR(1)
//! synoptic (weather) component with a multi-day correlation time, white
//! noise, and a weekend effect. The January-2023 regional presets in
//! [`crate::region`] pin the moments the paper reports.

use crate::region::RegionProfile;
use crate::trace::CarbonTrace;
use std::sync::{Arc, OnceLock};
use sustain_sim_core::cache::LruCache;
use sustain_sim_core::error::{env_knob_usize, ConfigError};
use sustain_sim_core::hash::{CanonicalHash, CanonicalHasher};
use sustain_sim_core::rng::RngStream;
use sustain_sim_core::series::TimeSeries;
use sustain_sim_core::time::{SimDuration, SimTime};

pub use sustain_sim_core::cache::CacheStats;

/// Minimum physical intensity; traces are clamped here to avoid negative
/// excursions in very clean or very volatile configurations.
pub const MIN_CI_G_PER_KWH: f64 = 5.0;

/// Normalized diurnal shape at `hour` ∈ [0, 24): two demand peaks (09h,
/// 19h) and a night trough. Zero-mean over the day by construction
/// (approximately), unit peak amplitude.
fn diurnal_shape(hour: f64) -> f64 {
    use std::f64::consts::PI;
    // Sum of two harmonics approximating the double demand peak.
    let h = hour / 24.0 * 2.0 * PI;
    0.55 * (h - 2.5).sin() + 0.45 * (2.0 * h - 1.2).sin()
}

/// Midday solar dip at `hour`: a negative bump centred on 13h, ~4 h wide.
fn solar_shape(hour: f64) -> f64 {
    let d = (hour - 13.0) / 3.0;
    -(-0.5 * d * d).exp()
}

/// Generates an hourly carbon-intensity trace of `days` days for a region
/// profile. Deterministic in `(profile, days, seed)`.
pub fn generate_hourly(profile: &RegionProfile, days: usize, seed: u64) -> CarbonTrace {
    assert!(days > 0, "trace must cover at least one day");
    let hours = days * 24;
    let root = RngStream::new(seed);
    let mut syn_rng = root.derive("synoptic");
    let mut noise_rng = root.derive("noise");

    // AR(1) synoptic component with the requested stationary std and
    // correlation time: x_{t+1} = ρ x_t + ε, ε ~ N(0, σ²(1-ρ²)).
    let rho = (-1.0 / profile.synoptic_corr_hours.max(1.0)).exp();
    let innov_std = profile.synoptic_std * (1.0 - rho * rho).sqrt();
    // Start from the stationary distribution so the first days are not
    // biased toward zero.
    let mut syn = if profile.synoptic_std > 0.0 {
        syn_rng.normal(0.0, profile.synoptic_std)
    } else {
        0.0
    };

    let mut values = Vec::with_capacity(hours);
    for h in 0..hours {
        let t = SimTime::from_hours(h as f64);
        let hour = t.hour_of_day();
        let mut ci = profile.mean_g_per_kwh;
        ci += profile.mean_g_per_kwh * profile.diurnal_amplitude * diurnal_shape(hour);
        ci += profile.mean_g_per_kwh * profile.solar_dip * solar_shape(hour);
        ci += syn;
        if profile.noise_std > 0.0 {
            ci += noise_rng.normal(0.0, profile.noise_std);
        }
        if t.is_weekend() {
            ci *= 1.0 - profile.weekend_drop;
        }
        values.push(ci.max(MIN_CI_G_PER_KWH));
        if profile.synoptic_std > 0.0 {
            syn = rho * syn + syn_rng.normal(0.0, innov_std);
        }
    }

    CarbonTrace::new(
        profile.name.clone(),
        TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), values),
    )
}

/// Generates a trace and then affinely re-calibrates it so its monthly mean
/// and daily-mean standard deviation match the profile exactly. This is how
/// the Fig. 2 anchors (Finland σ = 47.21) are pinned despite stochastic
/// generation.
///
/// ```
/// use sustain_grid::region::{Region, RegionProfile};
/// use sustain_grid::synth::generate_calibrated;
///
/// let profile = RegionProfile::january_2023(Region::Finland);
/// let trace = generate_calibrated(&profile, 31, 2023);
/// assert_eq!(trace.series().len(), 31 * 24);
/// // The paper's Finland anchor: daily-mean σ = 47.21 gCO₂/kWh.
/// assert!((trace.daily_stats().std_dev() - 47.21).abs() < 0.01);
/// ```
pub fn generate_calibrated(profile: &RegionProfile, days: usize, seed: u64) -> CarbonTrace {
    let trace = generate_hourly(profile, days, seed);
    if profile.synoptic_std == 0.0 {
        return trace;
    }
    trace.with_moments(profile.mean_g_per_kwh, profile.synoptic_std)
}

/// Cache key for a calibrated trace: a fingerprint of every field that
/// influences generation.
///
/// `RegionProfile` holds `f64` parameters (no `Eq`/`Hash`), and experiment
/// code freely mutates individual fields (e.g. zeroing `synoptic_std`), so
/// the key hashes the name bytes plus the exact bit patterns of all seven
/// parameters rather than keying on a `Region` enum. Bit-pattern hashing is
/// exact: two profiles collide only if generation would produce the same
/// trace anyway (modulo 64-bit FNV collisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    profile_fingerprint: u64,
    days: usize,
    seed: u64,
}

impl TraceKey {
    /// Fingerprint a `(profile, days, seed)` generation request.
    pub fn new(profile: &RegionProfile, days: usize, seed: u64) -> TraceKey {
        TraceKey {
            profile_fingerprint: profile.canonical_hash(),
            days,
            seed,
        }
    }
}

impl CanonicalHash for RegionProfile {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_str(&self.name);
        for param in [
            self.mean_g_per_kwh,
            self.diurnal_amplitude,
            self.solar_dip,
            self.synoptic_std,
            self.synoptic_corr_hours,
            self.noise_std,
            self.weekend_drop,
        ] {
            hasher.write_f64(param);
        }
    }
}

impl CanonicalHash for CarbonTrace {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_str(self.name());
        self.series().canonical_hash_into(hasher);
    }
}

/// Default capacity of the process-wide [`TraceCache`]: generous (an
/// experiment suite run touches well under a hundred distinct traces)
/// but bounded, so a long-lived service sweeping many profiles cannot
/// grow the cache without limit.
pub const DEFAULT_TRACE_CACHE_CAPACITY: usize = 256;

/// Environment variable overriding the global trace cache capacity
/// (`0` = unbounded).
pub const TRACE_CACHE_CAP_ENV: &str = "SUSTAIN_TRACE_CACHE_CAP";

/// Process-wide cache of calibrated traces, shared by every sweep point.
///
/// Calibrated generation is the dominant fixed cost of a sweep point
/// (31 days × 24 hourly samples plus moment calibration); sweeps re-request
/// the same `(profile, days, seed)` for every policy/threshold variation,
/// so one generation serves the whole sweep.
///
/// The cache is bounded: once more than `capacity` distinct keys have been
/// inserted, the least recently used entry is evicted (capacity `0` means
/// unbounded). Entries still in the cache keep their `Arc` identity across
/// hits; an evicted key regenerates on next request — same values, new
/// allocation. Hit/miss/eviction counters are exposed via [`stats`].
///
/// [`stats`]: TraceCache::stats
#[derive(Debug)]
pub struct TraceCache {
    inner: LruCache<TraceKey, Arc<CarbonTrace>>,
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache::with_capacity(DEFAULT_TRACE_CACHE_CAPACITY)
    }
}

impl TraceCache {
    /// Create an empty cache with the default capacity bound.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// Create an empty cache holding at most `capacity` traces
    /// (`0` = unbounded).
    pub fn with_capacity(capacity: usize) -> TraceCache {
        TraceCache {
            inner: LruCache::with_capacity(capacity),
        }
    }

    /// Current capacity bound (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Change the capacity bound, immediately evicting down to it if the
    /// cache currently holds more entries.
    pub fn set_capacity(&self, capacity: usize) {
        self.inner.set_capacity(capacity);
    }

    /// Fetch the calibrated trace for `(profile, days, seed)`, generating
    /// and inserting it on first use. Hits return a clone of the cached
    /// `Arc` (pointer-identical trace data) and refresh the entry's LRU
    /// position.
    pub fn get_or_generate(
        &self,
        profile: &RegionProfile,
        days: usize,
        seed: u64,
    ) -> Arc<CarbonTrace> {
        let key = TraceKey::new(profile, days, seed);
        if let Some(trace) = self.inner.lookup(&key) {
            return trace;
        }
        // Generate outside any lock: concurrent first requests may race and
        // generate twice, but generation is deterministic so both produce
        // identical traces and the first insert wins. The fault site sits
        // here too, so an injected panic never poisons the cache lock.
        sustain_sim_core::faultpoint!(infallible "grid::trace_fill");
        let trace = Arc::new(generate_calibrated(profile, days, seed));
        self.inner.insert_after_miss(key, trace)
    }

    /// Hit/miss/eviction counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all cached traces. The hit/miss/eviction counters are
    /// preserved (dropped entries do not count as evictions).
    pub fn clear(&self) {
        self.inner.clear();
    }
}

/// The process-wide [`TraceCache`] used by [`generate_calibrated_arc`].
///
/// Capacity defaults to [`DEFAULT_TRACE_CACHE_CAPACITY`] and can be
/// overridden (first use wins) via [`TRACE_CACHE_CAP_ENV`], or changed at
/// runtime with [`TraceCache::set_capacity`].
pub fn global_trace_cache() -> &'static TraceCache {
    static CACHE: OnceLock<TraceCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        // Lazy path: reachable from deep inside a sweep, so a malformed
        // capacity cannot surface as a `Result` here — warn loudly
        // (once: the cache is built once) and keep the default instead
        // of silently ignoring the knob. Boundary code gets the
        // typed-error behavior from [`init_trace_cache_cap_from_env`].
        let cap = match env_knob_usize(TRACE_CACHE_CAP_ENV) {
            Ok(Some(cap)) => cap,
            Ok(None) => DEFAULT_TRACE_CACHE_CAPACITY,
            Err(e) => {
                eprintln!(
                    "warning: {e}; keeping the default trace-cache \
                     capacity of {DEFAULT_TRACE_CACHE_CAPACITY}"
                );
                DEFAULT_TRACE_CACHE_CAPACITY
            }
        };
        TraceCache::with_capacity(cap)
    })
}

/// Strictly applies [`TRACE_CACHE_CAP_ENV`] to the process-wide cache if
/// set; returns the applied capacity. Boundary code (CLI/service
/// startup) calls this once so a malformed value becomes a typed
/// [`ConfigError`] instead of a silently-used default. Safe to call
/// whether or not the cache was already touched: the capacity is
/// (re)applied to the live cache, evicting down if needed.
pub fn init_trace_cache_cap_from_env() -> Result<Option<usize>, ConfigError> {
    let parsed = env_knob_usize(TRACE_CACHE_CAP_ENV)?;
    if let Some(cap) = parsed {
        global_trace_cache().set_capacity(cap);
    }
    Ok(parsed)
}

/// Cache-backed variant of [`generate_calibrated`]: returns a shared
/// `Arc<CarbonTrace>` from the process-wide [`TraceCache`], generating at
/// most once per distinct `(profile, days, seed)`.
///
/// This is the entry point sweep drivers should use; per-trace consumers
/// that need an owned `CarbonTrace` can still clone out of the `Arc`.
///
/// ```
/// use std::sync::Arc;
/// use sustain_grid::region::{Region, RegionProfile};
/// use sustain_grid::synth::generate_calibrated_arc;
///
/// let profile = RegionProfile::january_2023(Region::Finland);
/// let a = generate_calibrated_arc(&profile, 31, 2023);
/// let b = generate_calibrated_arc(&profile, 31, 2023);
/// assert!(Arc::ptr_eq(&a, &b)); // second call is a cache hit
/// ```
pub fn generate_calibrated_arc(
    profile: &RegionProfile,
    days: usize,
    seed: u64,
) -> Arc<CarbonTrace> {
    global_trace_cache().get_or_generate(profile, days, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Region, RegionProfile};

    #[test]
    fn deterministic_for_same_seed() {
        let p = RegionProfile::january_2023(Region::Germany);
        let a = generate_hourly(&p, 31, 7);
        let b = generate_hourly(&p, 31, 7);
        assert_eq!(a.series().values(), b.series().values());
        let c = generate_hourly(&p, 31, 8);
        assert_ne!(a.series().values(), c.series().values());
    }

    #[test]
    fn trace_has_expected_length_and_bounds() {
        let p = RegionProfile::january_2023(Region::France);
        let t = generate_hourly(&p, 31, 1);
        assert_eq!(t.series().len(), 31 * 24);
        for &v in t.series().values() {
            assert!(v >= MIN_CI_G_PER_KWH);
        }
    }

    #[test]
    fn mean_is_near_profile_mean() {
        let p = RegionProfile::january_2023(Region::Finland);
        let t = generate_hourly(&p, 31, 42);
        let mean = t.series().stats().mean();
        assert!(
            (mean - p.mean_g_per_kwh).abs() < 0.15 * p.mean_g_per_kwh,
            "mean {mean} vs {}",
            p.mean_g_per_kwh
        );
    }

    #[test]
    fn constant_profile_yields_flat_trace() {
        let p = RegionProfile::lrz_hydropower();
        let t = generate_hourly(&p, 10, 3);
        let s = t.series().stats();
        assert_eq!(s.min(), 20.0);
        assert_eq!(s.max(), 20.0);
    }

    #[test]
    fn diurnal_pattern_visible_in_hourly_but_not_daily() {
        let mut p = RegionProfile::january_2023(Region::GreatBritain);
        p.synoptic_std = 0.0;
        p.noise_std = 0.0;
        let t = generate_hourly(&p, 14, 5);
        // Hourly variance exists…
        assert!(t.series().stats().std_dev() > 10.0);
        // …but daily means on weekdays are nearly constant.
        let daily = t.daily_means();
        let weekday_vals: Vec<f64> = daily
            .values()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 7 < 5)
            .map(|(_, &v)| v)
            .collect();
        let mut rs = sustain_sim_core::stats::RunningStats::new();
        for v in weekday_vals {
            rs.push(v);
        }
        assert!(rs.std_dev() < 3.0, "daily weekday std {}", rs.std_dev());
    }

    #[test]
    fn weekend_effect_lowers_weekend_days() {
        let mut p = RegionProfile::january_2023(Region::Germany);
        p.synoptic_std = 0.0;
        p.noise_std = 0.0;
        p.weekend_drop = 0.2;
        let t = generate_hourly(&p, 14, 5);
        let daily = t.daily_means();
        let v = daily.values();
        // Day 5, 6 are the weekend under the Monday-epoch convention.
        assert!(v[5] < v[0] * 0.9);
        assert!(v[6] < v[1] * 0.9);
        assert!(v[12] < v[8] * 0.9);
    }

    #[test]
    fn solar_dip_depresses_midday() {
        let mut p = RegionProfile::january_2023(Region::Spain);
        p.synoptic_std = 0.0;
        p.noise_std = 0.0;
        p.diurnal_amplitude = 0.0;
        p.weekend_drop = 0.0;
        p.solar_dip = 0.2;
        let t = generate_hourly(&p, 1, 5);
        let v = t.series().values();
        assert!(v[13] < v[3], "midday {} vs night {}", v[13], v[3]);
    }

    #[test]
    fn cache_hits_are_arc_identical_and_match_uncached() {
        let cache = TraceCache::new();
        let p = RegionProfile::january_2023(Region::Italy);
        let a = cache.get_or_generate(&p, 31, 11);
        let b = cache.get_or_generate(&p, 31, 11);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let uncached = generate_calibrated(&p, 31, 11);
        assert_eq!(a.series().values(), uncached.series().values());
    }

    #[test]
    fn cache_distinguishes_mutated_profiles() {
        let cache = TraceCache::new();
        let p = RegionProfile::january_2023(Region::Germany);
        let mut q = p.clone();
        q.synoptic_std = 0.0;
        let a = cache.get_or_generate(&p, 7, 5);
        let b = cache.get_or_generate(&q, 7, 5);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.series().values(), b.series().values());
        assert_eq!(cache.len(), 2);
        // Days and seed are part of the key too.
        cache.get_or_generate(&p, 8, 5);
        cache.get_or_generate(&p, 7, 6);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn cache_respects_capacity_with_lru_eviction() {
        let cache = TraceCache::with_capacity(2);
        let p = RegionProfile::january_2023(Region::Sweden);
        let a = cache.get_or_generate(&p, 2, 1);
        let _b = cache.get_or_generate(&p, 2, 2);
        // Touch `a`'s key so seed 2 becomes the LRU entry.
        assert!(Arc::ptr_eq(&a, &cache.get_or_generate(&p, 2, 1)));
        // Third distinct key evicts seed 2 (the least recently used).
        let _c = cache.get_or_generate(&p, 2, 3);
        let s = cache.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.capacity, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        // Seed 1 survived eviction with its Arc identity intact…
        assert!(Arc::ptr_eq(&a, &cache.get_or_generate(&p, 2, 1)));
        // …while the evicted seed 2 regenerates: same values, new Arc,
        // and the insert evicts again to stay within capacity.
        let b2 = cache.get_or_generate(&p, 2, 2);
        assert_eq!(
            b2.series().values(),
            generate_calibrated(&p, 2, 2).series().values()
        );
        assert_eq!(cache.stats().evictions, 2);
        assert!(cache.len() <= 2);
    }

    #[test]
    fn cache_set_capacity_evicts_down_and_zero_means_unbounded() {
        let cache = TraceCache::with_capacity(0);
        let p = RegionProfile::january_2023(Region::Poland);
        for seed in 0..5 {
            cache.get_or_generate(&p, 2, seed);
        }
        assert_eq!(cache.len(), 5, "capacity 0 must not evict");
        assert_eq!(cache.stats().evictions, 0);
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 3);
        // The survivors are the two most recently used (seeds 3, 4).
        let before = cache.stats().misses;
        cache.get_or_generate(&p, 2, 3);
        cache.get_or_generate(&p, 2, 4);
        assert_eq!(cache.stats().misses, before, "3 and 4 must be hits");
    }

    /// Paper anchor: calibrated Finland trace reproduces σ = 47.21 exactly
    /// and the 2.1× France ratio.
    #[test]
    fn calibrated_finland_hits_anchors() {
        let fi = generate_calibrated(&RegionProfile::january_2023(Region::Finland), 31, 2023);
        let fr = generate_calibrated(&RegionProfile::january_2023(Region::France), 31, 2023);
        let fi_daily = fi.daily_means();
        let mut rs = sustain_sim_core::stats::RunningStats::new();
        for &v in fi_daily.values() {
            rs.push(v);
        }
        assert!((rs.std_dev() - 47.21).abs() < 0.01, "std {}", rs.std_dev());
        let ratio = fi.series().stats().mean() / fr.series().stats().mean();
        assert!((ratio - 2.1).abs() < 0.01, "ratio {ratio}");
    }
}
