//! Carbon-intensity traces: a named time series of gCO₂/kWh values with
//! the aggregation and calibration operations the experiments need.

use serde::{Deserialize, Serialize};
use sustain_sim_core::series::TimeSeries;
use sustain_sim_core::stats::RunningStats;
use sustain_sim_core::time::SimTime;
use sustain_sim_core::units::{Carbon, CarbonIntensity, Energy};

/// A named carbon-intensity time series (gCO₂/kWh).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonTrace {
    name: String,
    series: TimeSeries,
}

impl CarbonTrace {
    /// Wraps a series as a trace.
    pub fn new(name: impl Into<String>, series: TimeSeries) -> CarbonTrace {
        CarbonTrace {
            name: name.into(),
            series,
        }
    }

    /// Trace name (usually the region).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying series.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Intensity at a time (step-function, clamped at the edges).
    pub fn at(&self, t: SimTime) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(self.series.at(t))
    }

    /// Time-weighted mean intensity over a window.
    pub fn mean_over(&self, from: SimTime, to: SimTime) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(self.series.mean_over(from, to))
    }

    /// Mean intensity over the whole trace.
    pub fn overall_mean(&self) -> CarbonIntensity {
        CarbonIntensity::from_grams_per_kwh(self.series.stats().mean())
    }

    /// Daily means — the quantity Fig. 2 plots.
    pub fn daily_means(&self) -> TimeSeries {
        self.series.daily_means()
    }

    /// Statistics of the daily means (mean, std, …).
    pub fn daily_stats(&self) -> RunningStats {
        let daily = self.daily_means();
        let mut rs = RunningStats::new();
        for &v in daily.values() {
            rs.push(v);
        }
        rs
    }

    /// Carbon emitted by drawing constant power corresponding to `energy`
    /// spread uniformly over `[from, to]`: `∫ CI(t) · P dt`.
    pub fn carbon_for_energy(&self, energy: Energy, from: SimTime, to: SimTime) -> Carbon {
        let w = (to - from).as_secs();
        if w <= 0.0 {
            return Carbon::ZERO;
        }
        // gCO2 = kWh × time-weighted mean g/kWh over the window.
        energy.carbon_at(self.mean_over(from, to))
    }

    /// The end of the trace bucket containing `t` — the next sampling
    /// boundary strictly after `t`. Times before the start return the
    /// start; times at or past the end return `t + step` (the clamped
    /// value extends indefinitely).
    pub fn bucket_end_after(&self, t: SimTime) -> SimTime {
        // Delegates to the series' snapped bucket coordinate, so a `t`
        // sitting within float rounding of a boundary advances a whole
        // bucket instead of returning (approximately) itself — the
        // strictly-after guarantee tick scheduling relies on.
        self.series.next_boundary_after(t)
    }

    /// Affine re-calibration: shifts and scales the trace so the overall
    /// mean equals `target_mean` and the standard deviation of *daily
    /// means* equals `target_daily_std`. Values are floored at the physical
    /// minimum of 5 g/kWh.
    ///
    /// # Panics
    /// Panics if the trace has zero daily-mean variance (nothing to scale).
    pub fn with_moments(&self, target_mean: f64, target_daily_std: f64) -> CarbonTrace {
        let cur_mean = self.series.stats().mean();
        let cur_daily_std = self.daily_stats().std_dev();
        assert!(
            cur_daily_std > 0.0,
            "cannot rescale a trace with zero daily variance"
        );
        let s = target_daily_std / cur_daily_std;
        let series = self
            .series
            .map(|v| (target_mean + s * (v - cur_mean)).max(crate::synth::MIN_CI_G_PER_KWH));
        CarbonTrace::new(self.name.clone(), series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_sim_core::time::SimDuration;

    fn trace_of(values: Vec<f64>) -> CarbonTrace {
        CarbonTrace::new(
            "test",
            TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), values),
        )
    }

    #[test]
    fn at_and_mean() {
        let t = trace_of(vec![100.0, 200.0]);
        assert_eq!(t.at(SimTime::ZERO).grams_per_kwh(), 100.0);
        assert_eq!(
            t.mean_over(SimTime::ZERO, SimTime::from_hours(2.0))
                .grams_per_kwh(),
            150.0
        );
        assert_eq!(t.overall_mean().grams_per_kwh(), 150.0);
    }

    #[test]
    fn daily_means_aggregate_24_hours() {
        let mut vals = vec![100.0; 24];
        vals.extend(vec![300.0; 24]);
        let t = trace_of(vals);
        let daily = t.daily_means();
        assert_eq!(daily.values(), &[100.0, 300.0]);
        let stats = t.daily_stats();
        assert_eq!(stats.mean(), 200.0);
        assert_eq!(stats.std_dev(), 100.0);
    }

    #[test]
    fn carbon_for_energy_uses_window_mean() {
        let t = trace_of(vec![100.0, 300.0]);
        // 2 kWh over both hours at mean 200 g → 400 g.
        let c = t.carbon_for_energy(
            Energy::from_kwh(2.0),
            SimTime::ZERO,
            SimTime::from_hours(2.0),
        );
        assert!((c.grams() - 400.0).abs() < 1e-9);
        // Degenerate window.
        assert_eq!(
            t.carbon_for_energy(Energy::from_kwh(1.0), SimTime::ZERO, SimTime::ZERO),
            Carbon::ZERO
        );
    }

    #[test]
    fn bucket_end_after_aligns_to_boundaries() {
        let t = trace_of(vec![1.0, 2.0, 3.0]);
        assert_eq!(t.bucket_end_after(SimTime::ZERO), SimTime::from_hours(1.0));
        assert_eq!(
            t.bucket_end_after(SimTime::from_hours(0.5)),
            SimTime::from_hours(1.0)
        );
        assert_eq!(
            t.bucket_end_after(SimTime::from_hours(1.0)),
            SimTime::from_hours(2.0)
        );
        // Past the end: still advances by whole steps.
        assert_eq!(
            t.bucket_end_after(SimTime::from_hours(7.5)),
            SimTime::from_hours(8.0)
        );
    }

    #[test]
    fn with_moments_hits_targets() {
        let mut vals = vec![100.0; 24];
        vals.extend(vec![200.0; 24]);
        vals.extend(vec![300.0; 24]);
        let t = trace_of(vals).with_moments(500.0, 30.0);
        let stats = t.daily_stats();
        assert!((stats.mean() - 500.0).abs() < 1e-9);
        // Original daily std: std of {100,200,300} = 81.65; rescaled to 30.
        assert!((stats.std_dev() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn with_moments_floors_at_minimum() {
        let mut vals = vec![10.0; 24];
        vals.extend(vec![20.0; 24]);
        // Huge scale factor would push values below zero without the floor.
        let t = trace_of(vals).with_moments(10.0, 500.0);
        assert!(t.series().min() >= crate::synth::MIN_CI_G_PER_KWH);
    }

    #[test]
    #[should_panic(expected = "zero daily variance")]
    fn with_moments_rejects_flat_trace() {
        trace_of(vec![50.0; 48]).with_moments(100.0, 10.0);
    }
}
