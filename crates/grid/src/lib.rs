//! # sustain-grid
//!
//! Carbon-intensity grid substrate for the `sustain-hpc` workspace — the
//! Fig. 2 regenerator and the data source every carbon-aware policy in §3
//! of the paper consumes.
//!
//! * [`region`] — regional statistical profiles (January-2023-calibrated);
//! * [`synth`] — synthetic hourly trace generation (diurnal + synoptic +
//!   noise + weekend structure);
//! * [`trace`] — the [`trace::CarbonTrace`] container with daily means and
//!   moment calibration;
//! * [`forecast`] — persistence / seasonal-naïve / EWMA / Holt-Winters
//!   forecasters with backtesting;
//! * [`green`] — green-period detection for carbon-aware scheduling;
//! * [`marginal`] — merit-order stack model of average vs marginal
//!   intensity.
//!
//! Anchors from the paper reproduced here: Finland's January-2023 mean is
//! 2.1× France's; Finland's daily-mean σ is 47.21 gCO₂/kWh; hydropower
//! supply (LRZ) is 20 gCO₂/kWh vs 1025 gCO₂/kWh for coal.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod forecast;
pub mod green;
pub mod import;
pub mod marginal;
pub mod region;
pub mod seasonal;
pub mod synth;
pub mod trace;

pub use forecast::{backtest, Forecaster};
pub use green::{GreenDetector, GreenPeriod};
pub use import::{parse_carbon_csv, to_carbon_csv};
pub use region::{Region, RegionProfile, CI_COAL_G_PER_KWH, CI_HYDRO_G_PER_KWH};
pub use synth::{generate_calibrated, generate_calibrated_arc, generate_hourly, CacheStats};
pub use trace::CarbonTrace;
