//! Average vs marginal carbon intensity (the distinction behind Fig. 2,
//! which plots *marginal* intensities — ref \[2\] of the paper).
//!
//! A grid's **average** intensity is the emission-weighted mean of all
//! running generation; its **marginal** intensity is the intensity of the
//! generator that responds to the next unit of demand. A merit-order stack
//! model computes both as a function of demand: renewables and nuclear are
//! dispatched first (near-zero marginal), then hydro, gas, and coal — so
//! the marginal unit is usually fossil and the marginal intensity usually
//! exceeds the average.

use serde::{Deserialize, Serialize};
use sustain_sim_core::units::CarbonIntensity;

/// One rung of the merit-order ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationSource {
    /// Source name.
    pub name: String,
    /// Deployable capacity in MW.
    pub capacity_mw: f64,
    /// Emission intensity, gCO₂/kWh.
    pub intensity_g_per_kwh: f64,
}

/// A merit-order dispatch stack: sources are dispatched in the order given
/// (assumed sorted by marginal cost, which typically tracks intensity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeritOrderStack {
    /// Dispatch-ordered sources.
    pub sources: Vec<GenerationSource>,
}

impl MeritOrderStack {
    /// A stylized European winter stack: wind + solar + nuclear + hydro,
    /// then gas, then coal/lignite.
    pub fn european_winter() -> MeritOrderStack {
        let src = |name: &str, cap: f64, ci: f64| GenerationSource {
            name: name.into(),
            capacity_mw: cap,
            intensity_g_per_kwh: ci,
        };
        MeritOrderStack {
            sources: vec![
                src("wind", 18_000.0, 11.0),
                src("solar", 4_000.0, 41.0),
                src("nuclear", 12_000.0, 12.0),
                src("hydro", 6_000.0, 24.0),
                src("gas CCGT", 20_000.0, 490.0),
                src("hard coal", 12_000.0, 820.0),
                src("lignite", 8_000.0, 1025.0),
            ],
        }
    }

    /// Total stack capacity, MW.
    pub fn total_capacity_mw(&self) -> f64 {
        self.sources.iter().map(|s| s.capacity_mw).sum()
    }

    /// Average intensity at a demand level: emissions-weighted mean of the
    /// dispatched portion of the stack.
    ///
    /// # Panics
    /// Panics if demand is non-positive or exceeds total capacity.
    pub fn average_intensity(&self, demand_mw: f64) -> CarbonIntensity {
        self.check_demand(demand_mw);
        let mut remaining = demand_mw;
        let mut emissions = 0.0; // g/h numerator in MW·(g/kWh)
        for s in &self.sources {
            let dispatched = remaining.min(s.capacity_mw);
            emissions += dispatched * s.intensity_g_per_kwh;
            remaining -= dispatched;
            if remaining <= 0.0 {
                break;
            }
        }
        CarbonIntensity::from_grams_per_kwh(emissions / demand_mw)
    }

    /// Marginal intensity at a demand level: the intensity of the source
    /// serving the last MW.
    pub fn marginal_intensity(&self, demand_mw: f64) -> CarbonIntensity {
        self.check_demand(demand_mw);
        let mut cumulative = 0.0;
        for s in &self.sources {
            cumulative += s.capacity_mw;
            if demand_mw <= cumulative {
                return CarbonIntensity::from_grams_per_kwh(s.intensity_g_per_kwh);
            }
        }
        unreachable!("demand validated against capacity");
    }

    fn check_demand(&self, demand_mw: f64) {
        assert!(demand_mw > 0.0, "demand must be positive");
        assert!(
            demand_mw <= self.total_capacity_mw(),
            "demand {demand_mw} MW exceeds stack capacity {}",
            self.total_capacity_mw()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_demand_served_by_renewables() {
        let stack = MeritOrderStack::european_winter();
        let avg = stack.average_intensity(10_000.0);
        let marg = stack.marginal_intensity(10_000.0);
        assert!(avg.grams_per_kwh() < 20.0);
        assert_eq!(marg.grams_per_kwh(), 11.0); // still inside wind
    }

    /// The key insight of the average-vs-marginal reference: once fossil
    /// units are at the margin, marginal intensity far exceeds average.
    #[test]
    fn marginal_exceeds_average_at_high_demand() {
        let stack = MeritOrderStack::european_winter();
        for demand in [45_000.0, 55_000.0, 65_000.0, 75_000.0] {
            let avg = stack.average_intensity(demand).grams_per_kwh();
            let marg = stack.marginal_intensity(demand).grams_per_kwh();
            assert!(
                marg > 1.5 * avg,
                "demand {demand}: marginal {marg} vs average {avg}"
            );
        }
    }

    #[test]
    fn marginal_steps_through_merit_order() {
        let stack = MeritOrderStack::european_winter();
        // Cumulative: 18, 22, 34, 40, 60, 72, 80 GW.
        assert_eq!(stack.marginal_intensity(20_000.0).grams_per_kwh(), 41.0);
        assert_eq!(stack.marginal_intensity(35_000.0).grams_per_kwh(), 24.0);
        assert_eq!(stack.marginal_intensity(50_000.0).grams_per_kwh(), 490.0);
        assert_eq!(stack.marginal_intensity(70_000.0).grams_per_kwh(), 820.0);
        assert_eq!(stack.marginal_intensity(79_000.0).grams_per_kwh(), 1025.0);
    }

    #[test]
    fn average_is_monotone_in_demand_beyond_renewables() {
        let stack = MeritOrderStack::european_winter();
        let mut last = 0.0;
        for demand in [40_000.0, 50_000.0, 60_000.0, 70_000.0, 80_000.0] {
            let avg = stack.average_intensity(demand).grams_per_kwh();
            assert!(avg > last, "demand {demand}");
            last = avg;
        }
    }

    #[test]
    fn full_capacity_is_dispatchable() {
        let stack = MeritOrderStack::european_winter();
        let total = stack.total_capacity_mw();
        assert_eq!(total, 80_000.0);
        assert_eq!(stack.marginal_intensity(total).grams_per_kwh(), 1025.0);
    }

    #[test]
    #[should_panic(expected = "exceeds stack capacity")]
    fn overdemand_rejected() {
        MeritOrderStack::european_winter().average_intensity(100_000.0);
    }

    #[test]
    #[should_panic(expected = "demand must be positive")]
    fn zero_demand_rejected() {
        MeritOrderStack::european_winter().marginal_intensity(0.0);
    }
}
