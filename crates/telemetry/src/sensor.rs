//! DCDB-style hierarchical sensor tree (§3.4).
//!
//! The paper calls for extending operational data analytics tools "such as
//! DCDB" to aggregate carbon data. DCDB organizes sensors in a slash-
//! separated hierarchy (`/system/rack/node/cpu/power`); queries aggregate
//! over subtrees and time windows. This is a compact in-memory
//! reimplementation of that model: enough to attribute power/carbon
//! telemetry at any level of the machine.

use serde::{Deserialize, Serialize};
use sustain_sim_core::time::SimTime;

/// A timestamped reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// Sample time.
    pub time: SimTime,
    /// Sample value (unit is sensor-defined).
    pub value: f64,
}

/// A named sensor with its time series of readings.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Sensor {
    readings: Vec<Reading>,
}

impl Sensor {
    /// Appends a reading. Readings must arrive in time order.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.readings.last() {
            assert!(time >= last.time, "out-of-order reading");
        }
        self.readings.push(Reading { time, value });
    }

    /// All readings.
    pub fn readings(&self) -> &[Reading] {
        &self.readings
    }

    /// Readings within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[Reading] {
        let lo = self.readings.partition_point(|r| r.time < from);
        let hi = self.readings.partition_point(|r| r.time < to);
        &self.readings[lo..hi]
    }

    /// Mean value over a window (unweighted), or `None` if empty.
    pub fn mean_over(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let w = self.window(from, to);
        if w.is_empty() {
            None
        } else {
            Some(w.iter().map(|r| r.value).sum::<f64>() / w.len() as f64)
        }
    }
}

/// A sensor tree addressed by slash-separated paths.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SensorTree {
    sensors: std::collections::BTreeMap<String, Sensor>,
}

impl SensorTree {
    /// Creates an empty tree.
    pub fn new() -> SensorTree {
        SensorTree::default()
    }

    /// Pushes a reading to a sensor path (creating the sensor on first
    /// use). Paths must start with `/`.
    pub fn push(&mut self, path: &str, time: SimTime, value: f64) {
        assert!(path.starts_with('/'), "sensor path must start with '/'");
        self.sensors
            .entry(path.to_string())
            .or_default()
            .push(time, value);
    }

    /// The sensor at an exact path.
    pub fn get(&self, path: &str) -> Option<&Sensor> {
        self.sensors.get(path)
    }

    /// All sensor paths under a prefix (subtree query).
    pub fn subtree(&self, prefix: &str) -> Vec<&str> {
        self.sensors
            .keys()
            .filter(|k| k.starts_with(prefix))
            .map(String::as_str)
            .collect()
    }

    /// Sums the means of every sensor in a subtree over a window —
    /// e.g. total node power from per-component power sensors.
    pub fn aggregate_mean(&self, prefix: &str, from: SimTime, to: SimTime) -> f64 {
        self.subtree(prefix)
            .iter()
            .filter_map(|p| self.sensors[*p].mean_over(from, to))
            .sum()
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.sensors.len()
    }

    /// `true` when no sensors exist.
    pub fn is_empty(&self) -> bool {
        self.sensors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: f64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn sensor_window_queries() {
        let mut s = Sensor::default();
        for h in 0..10 {
            s.push(t(h as f64), h as f64 * 10.0);
        }
        let w = s.window(t(2.0), t(5.0));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].value, 20.0);
        assert_eq!(s.mean_over(t(2.0), t(5.0)), Some(30.0));
        assert_eq!(s.mean_over(t(20.0), t(30.0)), None);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_rejected() {
        let mut s = Sensor::default();
        s.push(t(2.0), 1.0);
        s.push(t(1.0), 1.0);
    }

    #[test]
    fn tree_subtree_aggregation() {
        let mut tree = SensorTree::new();
        tree.push("/sys/node0/cpu/power", t(0.0), 200.0);
        tree.push("/sys/node0/gpu/power", t(0.0), 350.0);
        tree.push("/sys/node0/dram/power", t(0.0), 40.0);
        tree.push("/sys/node1/cpu/power", t(0.0), 210.0);
        assert_eq!(tree.len(), 4);
        assert_eq!(tree.subtree("/sys/node0").len(), 3);
        let node0 = tree.aggregate_mean("/sys/node0", t(0.0), t(1.0));
        assert!((node0 - 590.0).abs() < 1e-9);
        let all = tree.aggregate_mean("/sys", t(0.0), t(1.0));
        assert!((all - 800.0).abs() < 1e-9);
    }

    #[test]
    fn exact_path_lookup() {
        let mut tree = SensorTree::new();
        tree.push("/a/b", t(0.0), 1.0);
        assert!(tree.get("/a/b").is_some());
        assert!(tree.get("/a").is_none());
        assert!(!tree.is_empty());
    }

    #[test]
    #[should_panic(expected = "start with '/'")]
    fn relative_path_rejected() {
        SensorTree::new().push("a/b", t(0.0), 1.0);
    }
}
