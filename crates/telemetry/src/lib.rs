//! # sustain-telemetry
//!
//! DCDB-style operational data analytics for carbon (§3.4 of the paper):
//! a hierarchical sensor tree, per-job/per-user carbon accounting, user-
//! facing carbon reports with real-world analogies, green-period core-hour
//! incentives, the Carbon500 ranking (§2.2), and CSV/JSON export.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]

pub mod accounting;
pub mod carbon500;
pub mod export;
pub mod feed;
pub mod incentive;
pub mod project;
pub mod report;
pub mod requests;
pub mod sensor;

pub use accounting::{aggregate_by_user, profile_job, site_account, JobCarbonProfile};
pub use carbon500::{rank, Carbon500Entry, Carbon500Row};
pub use feed::feed_from_records;
pub use incentive::{ElasticityModel, IncentiveScheme, JobBill};
pub use report::{render, to_text, JobReport};
pub use requests::{EndpointSnapshot, RequestLog};
pub use sensor::{Reading, Sensor, SensorTree};
