//! Green-period core-hour incentives (§3.4) — experiment E11b.
//!
//! The paper: *"To encourage users to submit jobs during periods of green
//! energy, HPC centers can offer incentives by only charging a fraction of
//! the actual core hours used by the job during that time."* This module
//! implements the charging rule and a simple behavioural elasticity model
//! to quantify the carbon effect of users shifting load into green
//! windows.

use serde::{Deserialize, Serialize};
use sustain_grid::green::GreenDetector;
use sustain_grid::trace::CarbonTrace;
use sustain_scheduler::metrics::JobRecord;
use sustain_sim_core::units::Carbon;

/// The charging rule: green node-hours cost a fraction of their face
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncentiveScheme {
    /// Price multiplier for node-hours consumed in green periods (e.g.
    /// 0.5 = half price). 1.0 disables the incentive.
    pub green_price_factor: f64,
}

impl Default for IncentiveScheme {
    fn default() -> Self {
        IncentiveScheme {
            green_price_factor: 0.5,
        }
    }
}

/// Billing outcome for a job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobBill {
    /// Face-value node-hours consumed.
    pub node_hours: f64,
    /// Node-hours consumed inside green periods.
    pub green_node_hours: f64,
    /// Node-hours charged after the discount.
    pub charged_node_hours: f64,
}

impl IncentiveScheme {
    /// Bills a job by walking its segments against the green detector.
    pub fn bill(
        &self,
        record: &JobRecord,
        trace: &CarbonTrace,
        detector: &GreenDetector,
    ) -> JobBill {
        let threshold = detector.threshold_for(trace);
        let mut total = 0.0;
        let mut green = 0.0;
        for seg in &record.segments {
            let mut t = seg.start;
            while t < seg.end {
                // Bucket-aligned sub-windows: classify each by the trace
                // bucket it actually lies in.
                let seg_end = trace.bucket_end_after(t).min(seg.end);
                let nh = seg.nodes as f64 * (seg_end - t).as_hours();
                total += nh;
                if trace.at(t).grams_per_kwh() < threshold {
                    green += nh;
                }
                t = seg_end;
            }
        }
        JobBill {
            node_hours: total,
            green_node_hours: green,
            charged_node_hours: (total - green) + green * self.green_price_factor,
        }
    }
}

/// Behavioural model: the fraction of *shiftable* load users move into
/// green periods as a function of the discount depth. Follows a simple
/// saturating response: no discount → no shift; deep discount → most
/// shiftable load moves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticityModel {
    /// Fraction of total load that is time-shiftable at all (deadline-free
    /// batch work).
    pub shiftable_fraction: f64,
    /// Responsiveness: shift = shiftable × (1 − exp(−k·discount)).
    pub responsiveness: f64,
}

impl Default for ElasticityModel {
    fn default() -> Self {
        ElasticityModel {
            shiftable_fraction: 0.6,
            responsiveness: 3.0,
        }
    }
}

impl ElasticityModel {
    /// Fraction of total load shifted into green windows at a discount
    /// depth (`1 − green_price_factor`).
    pub fn shifted_fraction(&self, discount: f64) -> f64 {
        assert!((0.0..=1.0).contains(&discount), "discount out of range");
        self.shiftable_fraction * (1.0 - (-self.responsiveness * discount).exp())
    }

    /// Expected carbon saving when `total_energy_kwh` of load pays
    /// `mean_ci` on average but `green_ci` inside green windows, under the
    /// given discount.
    pub fn carbon_saving(
        &self,
        total_energy_kwh: f64,
        mean_ci: f64,
        green_ci: f64,
        discount: f64,
    ) -> Carbon {
        let shifted = self.shifted_fraction(discount) * total_energy_kwh;
        Carbon::from_grams(shifted * (mean_ci - green_ci).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_scheduler::metrics::Segment;
    use sustain_sim_core::series::TimeSeries;
    use sustain_sim_core::time::{SimDuration, SimTime};
    use sustain_sim_core::units::Power;
    use sustain_workload::job::JobId;

    fn trace() -> CarbonTrace {
        CarbonTrace::new(
            "t",
            TimeSeries::new(
                SimTime::ZERO,
                SimDuration::from_hours(1.0),
                vec![100.0, 100.0, 400.0, 400.0], // mean 250, threshold 225
            ),
        )
    }

    fn record(start_h: f64, end_h: f64, nodes: u32) -> JobRecord {
        JobRecord {
            id: JobId(1),
            user: 0,
            submit: SimTime::ZERO,
            start: SimTime::from_hours(start_h),
            end: SimTime::from_hours(end_h),
            segments: vec![Segment {
                start: SimTime::from_hours(start_h),
                end: SimTime::from_hours(end_h),
                nodes,
                power: Power::from_kw(1.0),
            }],
            suspensions: 0,
            reshapes: 0,
            restarts: 0,
        }
    }

    #[test]
    fn fully_green_job_gets_full_discount() {
        let bill = IncentiveScheme::default().bill(
            &record(0.0, 2.0, 4),
            &trace(),
            &GreenDetector::default(),
        );
        assert!((bill.node_hours - 8.0).abs() < 1e-9);
        assert!((bill.green_node_hours - 8.0).abs() < 1e-9);
        assert!((bill.charged_node_hours - 4.0).abs() < 1e-9);
    }

    #[test]
    fn brown_job_pays_full_price() {
        let bill = IncentiveScheme::default().bill(
            &record(2.0, 4.0, 4),
            &trace(),
            &GreenDetector::default(),
        );
        assert_eq!(bill.green_node_hours, 0.0);
        assert!((bill.charged_node_hours - bill.node_hours).abs() < 1e-9);
    }

    #[test]
    fn mixed_job_prorated() {
        // Hours 1-3: one green, one brown.
        let bill = IncentiveScheme::default().bill(
            &record(1.0, 3.0, 2),
            &trace(),
            &GreenDetector::default(),
        );
        assert!((bill.node_hours - 4.0).abs() < 1e-9);
        assert!((bill.green_node_hours - 2.0).abs() < 1e-9);
        assert!((bill.charged_node_hours - 3.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_incentive_charges_face_value() {
        let scheme = IncentiveScheme {
            green_price_factor: 1.0,
        };
        let bill = scheme.bill(&record(0.0, 2.0, 4), &trace(), &GreenDetector::default());
        assert_eq!(bill.charged_node_hours, bill.node_hours);
    }

    #[test]
    fn elasticity_monotone_and_saturating() {
        let m = ElasticityModel::default();
        assert_eq!(m.shifted_fraction(0.0), 0.0);
        let mut last = 0.0;
        for d in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let s = m.shifted_fraction(d);
            assert!(s > last);
            last = s;
        }
        // Never exceeds the shiftable fraction.
        assert!(last < m.shiftable_fraction);
    }

    #[test]
    fn carbon_saving_scales_with_discount() {
        let m = ElasticityModel::default();
        let low = m.carbon_saving(1000.0, 300.0, 150.0, 0.2);
        let high = m.carbon_saving(1000.0, 300.0, 150.0, 0.8);
        assert!(high > low);
        // CI gap of zero → no savings.
        assert_eq!(m.carbon_saving(1000.0, 200.0, 200.0, 0.5), Carbon::ZERO);
    }

    #[test]
    #[should_panic(expected = "discount out of range")]
    fn invalid_discount_rejected() {
        ElasticityModel::default().shifted_fraction(1.5);
    }
}
