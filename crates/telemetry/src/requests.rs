//! Per-endpoint request accounting for long-running front-ends.
//!
//! The service front-end (§3.4 envisions user-facing carbon accounting
//! as an always-on *service*, not a one-shot report) needs the same
//! operational-data treatment this crate gives jobs: how many requests
//! each endpoint served, how many failed, and how long they took. A
//! [`RequestLog`] is a small, lock-cheap registry of per-endpoint
//! counters plus a fixed-bucket latency histogram, snapshot-able as
//! serializable rows for a stats endpoint.
//!
//! Counters are atomics and the registry map is only locked to resolve
//! an endpoint label to its `Arc`, so recording is cheap enough to sit
//! on every request path.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bounds (inclusive, microseconds) of the latency histogram
/// buckets; a final unbounded bucket catches everything slower. The
/// spacing is roughly geometric: sub-millisecond health checks land in
/// the first buckets, multi-second scenario runs in the last.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 12] = [
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000, 5_000_000,
];

/// Number of histogram buckets (the bounds above plus the overflow
/// bucket).
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// Live (atomic) counters for one endpoint.
#[derive(Debug, Default)]
struct EndpointCounters {
    requests: AtomicU64,
    /// Responses with a 4xx status (client errors: malformed JSON,
    /// rejected configs, unknown routes, overload shedding).
    errors_4xx: AtomicU64,
    /// Responses with a 5xx status (faulted work units).
    errors_5xx: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl EndpointCounters {
    fn record(&self, status: u16, latency_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.errors_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.errors_5xx.fetch_add(1, Ordering::Relaxed);
        }
        self.total_us.fetch_add(latency_us, Ordering::Relaxed);
        self.max_us.fetch_max(latency_us, Ordering::Relaxed);
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| latency_us <= bound)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// One latency-histogram bucket in a snapshot: the count of requests
/// that completed in at most `le_us` microseconds (exclusive of faster
/// buckets). `le_us == u64::MAX` marks the overflow bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket, microseconds.
    pub le_us: u64,
    /// Requests that landed in this bucket.
    pub count: u64,
}

/// Serializable snapshot of one endpoint's counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EndpointSnapshot {
    /// Endpoint label (e.g. `"POST /run"`).
    pub endpoint: String,
    /// Total requests recorded.
    pub requests: u64,
    /// Responses with a 4xx status.
    pub errors_4xx: u64,
    /// Responses with a 5xx status.
    pub errors_5xx: u64,
    /// Sum of all request latencies, microseconds.
    pub total_us: u64,
    /// Slowest request, microseconds.
    pub max_us: u64,
    /// Latency histogram (fixed bounds, then one overflow bucket).
    pub latency: Vec<BucketCount>,
}

/// Per-endpoint request counters and latency histograms for one
/// front-end instance (each server owns its own log, so tests running
/// several servers in one process do not bleed into each other).
#[derive(Debug, Default)]
pub struct RequestLog {
    endpoints: Mutex<BTreeMap<String, Arc<EndpointCounters>>>,
}

impl RequestLog {
    /// Creates an empty log.
    pub fn new() -> RequestLog {
        RequestLog::default()
    }

    /// Records one completed request against `endpoint`.
    pub fn record(&self, endpoint: &str, status: u16, latency_us: u64) {
        let counters = {
            let mut map = self.endpoints.lock();
            match map.get(endpoint) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(EndpointCounters::default());
                    map.insert(endpoint.to_string(), Arc::clone(&c));
                    c
                }
            }
        };
        counters.record(status, latency_us);
    }

    /// Snapshot of every endpoint seen so far, sorted by endpoint label
    /// (BTreeMap order) so serialized output is stable.
    pub fn snapshot(&self) -> Vec<EndpointSnapshot> {
        let map = self.endpoints.lock();
        map.iter()
            .map(|(endpoint, c)| EndpointSnapshot {
                endpoint: endpoint.clone(),
                requests: c.requests.load(Ordering::Relaxed),
                errors_4xx: c.errors_4xx.load(Ordering::Relaxed),
                errors_5xx: c.errors_5xx.load(Ordering::Relaxed),
                total_us: c.total_us.load(Ordering::Relaxed),
                max_us: c.max_us.load(Ordering::Relaxed),
                latency: LATENCY_BUCKET_BOUNDS_US
                    .iter()
                    .copied()
                    .chain(std::iter::once(u64::MAX))
                    .zip(c.buckets.iter())
                    .map(|(le_us, bucket)| BucketCount {
                        le_us,
                        count: bucket.load(Ordering::Relaxed),
                    })
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_statuses_and_buckets() {
        let log = RequestLog::new();
        log.record("POST /run", 200, 1_200);
        log.record("POST /run", 400, 100);
        log.record("POST /run", 500, 7_000_000);
        log.record("GET /healthz", 200, 50);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        // BTreeMap order: GET before POST.
        assert_eq!(snap[0].endpoint, "GET /healthz");
        let run = &snap[1];
        assert_eq!(run.requests, 3);
        assert_eq!(run.errors_4xx, 1);
        assert_eq!(run.errors_5xx, 1);
        assert_eq!(run.max_us, 7_000_000);
        assert_eq!(run.total_us, 1_200 + 100 + 7_000_000);
        assert_eq!(run.latency.len(), LATENCY_BUCKETS);
        // 100us -> first bucket (<=250), 1200us -> <=2500, 7s -> overflow.
        assert_eq!(run.latency[0].count, 1);
        assert_eq!(run.latency[3].count, 1);
        assert_eq!(run.latency[LATENCY_BUCKETS - 1].count, 1);
        assert_eq!(run.latency[LATENCY_BUCKETS - 1].le_us, u64::MAX);
        let total: u64 = run.latency.iter().map(|b| b.count).sum();
        assert_eq!(total, run.requests);
    }

    #[test]
    fn snapshot_is_serializable_and_stable() {
        let log = RequestLog::new();
        log.record("GET /stats", 200, 400);
        let a = serde_json::to_string(&log.snapshot()).unwrap();
        let b = serde_json::to_string(&log.snapshot()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"endpoint\":\"GET /stats\""), "{a}");
    }
}
