//! Per-endpoint request accounting for long-running front-ends.
//!
//! The service front-end (§3.4 envisions user-facing carbon accounting
//! as an always-on *service*, not a one-shot report) needs the same
//! operational-data treatment this crate gives jobs: how many requests
//! each endpoint served, how many failed, and how long they took. A
//! [`RequestLog`] is a small, lock-cheap registry of per-endpoint
//! counters plus a fixed-bucket latency histogram, snapshot-able as
//! serializable rows for a stats endpoint.
//!
//! Counters are atomics and the registry map is only locked to resolve
//! an endpoint label to its `Arc`, so recording is cheap enough to sit
//! on every request path.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Capacity of the sliding error window: the readiness state machine
/// judges the last this-many requests, not lifetime totals, so a burst
/// of faults degrades the process and a burst of successes heals it.
pub const ERROR_WINDOW: usize = 64;

/// Fewest window samples before an error *rate* is meaningful; below
/// this the window reports a zero rate rather than letting one early
/// fault read as "100 % failing".
pub const ERROR_WINDOW_MIN_SAMPLES: usize = 8;

/// Snapshot of the sliding error window: the last [`ERROR_WINDOW`]
/// requests and how many of them were 5xx.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WindowStats {
    /// Requests currently in the window (saturates at [`ERROR_WINDOW`]).
    pub samples: u64,
    /// 5xx responses among them.
    pub errors_5xx: u64,
}

impl WindowStats {
    /// Fraction of windowed requests that failed 5xx; zero until
    /// [`ERROR_WINDOW_MIN_SAMPLES`] requests have been observed.
    pub fn error_rate(&self) -> f64 {
        if (self.samples as usize) < ERROR_WINDOW_MIN_SAMPLES {
            return 0.0;
        }
        self.errors_5xx as f64 / self.samples as f64
    }
}

/// Upper bounds (inclusive, microseconds) of the latency histogram
/// buckets; a final unbounded bucket catches everything slower. The
/// spacing is roughly geometric: sub-millisecond health checks land in
/// the first buckets, multi-second scenario runs in the last.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 12] = [
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000, 5_000_000,
];

/// Number of histogram buckets (the bounds above plus the overflow
/// bucket).
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// Live (atomic) counters for one endpoint.
#[derive(Debug, Default)]
struct EndpointCounters {
    requests: AtomicU64,
    /// Responses with a 4xx status (client errors: malformed JSON,
    /// rejected configs, unknown routes, overload shedding).
    errors_4xx: AtomicU64,
    /// Responses with a 5xx status (faulted work units).
    errors_5xx: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl EndpointCounters {
    fn record(&self, status: u16, latency_us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.errors_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.errors_5xx.fetch_add(1, Ordering::Relaxed);
        }
        self.total_us.fetch_add(latency_us, Ordering::Relaxed);
        self.max_us.fetch_max(latency_us, Ordering::Relaxed);
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| latency_us <= bound)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }
}

/// One latency-histogram bucket in a snapshot: the count of requests
/// that completed in at most `le_us` microseconds (exclusive of faster
/// buckets). `le_us == u64::MAX` marks the overflow bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket, microseconds.
    pub le_us: u64,
    /// Requests that landed in this bucket.
    pub count: u64,
}

/// Serializable snapshot of one endpoint's counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct EndpointSnapshot {
    /// Endpoint label (e.g. `"POST /run"`).
    pub endpoint: String,
    /// Total requests recorded.
    pub requests: u64,
    /// Responses with a 4xx status.
    pub errors_4xx: u64,
    /// Responses with a 5xx status.
    pub errors_5xx: u64,
    /// Sum of all request latencies, microseconds.
    pub total_us: u64,
    /// Slowest request, microseconds.
    pub max_us: u64,
    /// Latency histogram (fixed bounds, then one overflow bucket).
    pub latency: Vec<BucketCount>,
}

/// Per-endpoint request counters and latency histograms for one
/// front-end instance (each server owns its own log, so tests running
/// several servers in one process do not bleed into each other).
#[derive(Debug, Default)]
pub struct RequestLog {
    endpoints: Mutex<BTreeMap<String, Arc<EndpointCounters>>>,
    /// Ring of the last [`ERROR_WINDOW`] request outcomes
    /// (`true` = 5xx), feeding the readiness error rate.
    window: Mutex<VecDeque<bool>>,
}

impl RequestLog {
    /// Creates an empty log.
    pub fn new() -> RequestLog {
        RequestLog::default()
    }

    /// Records one completed request against `endpoint`.
    pub fn record(&self, endpoint: &str, status: u16, latency_us: u64) {
        let counters = {
            let mut map = self.endpoints.lock();
            match map.get(endpoint) {
                Some(c) => Arc::clone(c),
                None => {
                    let c = Arc::new(EndpointCounters::default());
                    map.insert(endpoint.to_string(), Arc::clone(&c));
                    c
                }
            }
        };
        counters.record(status, latency_us);
        let mut window = self.window.lock();
        if window.len() == ERROR_WINDOW {
            window.pop_front();
        }
        window.push_back(status >= 500);
    }

    /// Snapshot of the sliding error window across all endpoints.
    pub fn window(&self) -> WindowStats {
        let window = self.window.lock();
        WindowStats {
            samples: window.len() as u64,
            errors_5xx: window.iter().filter(|&&failed| failed).count() as u64,
        }
    }

    /// Snapshot of every endpoint seen so far, sorted by endpoint label
    /// (BTreeMap order) so serialized output is stable.
    pub fn snapshot(&self) -> Vec<EndpointSnapshot> {
        let map = self.endpoints.lock();
        map.iter()
            .map(|(endpoint, c)| EndpointSnapshot {
                endpoint: endpoint.clone(),
                requests: c.requests.load(Ordering::Relaxed),
                errors_4xx: c.errors_4xx.load(Ordering::Relaxed),
                errors_5xx: c.errors_5xx.load(Ordering::Relaxed),
                total_us: c.total_us.load(Ordering::Relaxed),
                max_us: c.max_us.load(Ordering::Relaxed),
                latency: LATENCY_BUCKET_BOUNDS_US
                    .iter()
                    .copied()
                    .chain(std::iter::once(u64::MAX))
                    .zip(c.buckets.iter())
                    .map(|(le_us, bucket)| BucketCount {
                        le_us,
                        count: bucket.load(Ordering::Relaxed),
                    })
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_statuses_and_buckets() {
        let log = RequestLog::new();
        log.record("POST /run", 200, 1_200);
        log.record("POST /run", 400, 100);
        log.record("POST /run", 500, 7_000_000);
        log.record("GET /healthz", 200, 50);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        // BTreeMap order: GET before POST.
        assert_eq!(snap[0].endpoint, "GET /healthz");
        let run = &snap[1];
        assert_eq!(run.requests, 3);
        assert_eq!(run.errors_4xx, 1);
        assert_eq!(run.errors_5xx, 1);
        assert_eq!(run.max_us, 7_000_000);
        assert_eq!(run.total_us, 1_200 + 100 + 7_000_000);
        assert_eq!(run.latency.len(), LATENCY_BUCKETS);
        // 100us -> first bucket (<=250), 1200us -> <=2500, 7s -> overflow.
        assert_eq!(run.latency[0].count, 1);
        assert_eq!(run.latency[3].count, 1);
        assert_eq!(run.latency[LATENCY_BUCKETS - 1].count, 1);
        assert_eq!(run.latency[LATENCY_BUCKETS - 1].le_us, u64::MAX);
        let total: u64 = run.latency.iter().map(|b| b.count).sum();
        assert_eq!(total, run.requests);
    }

    #[test]
    fn sliding_window_tracks_recent_errors_and_heals() {
        let log = RequestLog::new();
        // Below the minimum sample count the rate is pinned to zero.
        log.record("POST /run", 500, 10);
        assert_eq!(log.window().errors_5xx, 1);
        assert_eq!(log.window().error_rate(), 0.0);
        for _ in 0..ERROR_WINDOW_MIN_SAMPLES {
            log.record("POST /run", 500, 10);
        }
        let w = log.window();
        assert!(w.error_rate() > 0.99, "{w:?}");
        // A full window of successes pushes every failure out.
        for _ in 0..ERROR_WINDOW {
            log.record("POST /run", 200, 10);
        }
        let w = log.window();
        assert_eq!(w.samples, ERROR_WINDOW as u64);
        assert_eq!(w.errors_5xx, 0);
        assert_eq!(w.error_rate(), 0.0);
    }

    #[test]
    fn snapshot_is_serializable_and_stable() {
        let log = RequestLog::new();
        log.record("GET /stats", 200, 400);
        let a = serde_json::to_string(&log.snapshot()).unwrap();
        let b = serde_json::to_string(&log.snapshot()).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"endpoint\":\"GET /stats\""), "{a}");
    }
}
