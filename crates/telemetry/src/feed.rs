//! Feeding the DCDB-style sensor tree from simulation output.
//!
//! The paper's §3.4 pipeline is: telemetry (DCDB) → aggregation → carbon
//! quantification. This module is the first arrow: it populates a
//! [`crate::sensor::SensorTree`] from scheduler records and a
//! grid trace — system power, per-job power, and grid intensity — at a
//! fixed cadence, so downstream aggregation queries run exactly as they
//! would against a live DCDB.

use crate::sensor::SensorTree;
use sustain_grid::trace::CarbonTrace;
use sustain_scheduler::metrics::{power_profile, JobRecord};
use sustain_sim_core::time::{SimDuration, SimTime};

/// Populates a sensor tree from completed job records and the grid trace.
///
/// Sensors created:
/// * `/system/power` — total job power per sample, W;
/// * `/system/jobs/<id>/power` — per-job power, W (samples only while the
///   job runs);
/// * `/grid/carbon_intensity` — gCO₂/kWh per sample.
pub fn feed_from_records(
    records: &[JobRecord],
    trace: &CarbonTrace,
    step: SimDuration,
    horizon: SimTime,
) -> SensorTree {
    assert!(!step.is_zero(), "sampling step must be positive");
    let mut tree = SensorTree::new();

    // System-level power from the reconstructed profile.
    let profile = power_profile(records, step, horizon);
    for (t, w) in profile.iter() {
        tree.push("/system/power", t, w);
    }

    // Grid intensity at the same cadence.
    let mut t = SimTime::ZERO;
    while t < horizon {
        tree.push("/grid/carbon_intensity", t, trace.at(t).grams_per_kwh());
        t += step;
    }

    // Per-job power: one sensor per job, sampled over its segments.
    for rec in records {
        let path = format!("/system/jobs/{}/power", rec.id.0);
        for seg in &rec.segments {
            let mut t = seg.start;
            while t < seg.end {
                tree.push(&path, t, seg.power.watts());
                t = (t + step).min(seg.end);
                if t >= seg.end {
                    break;
                }
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_scheduler::metrics::Segment;
    use sustain_sim_core::series::TimeSeries;
    use sustain_sim_core::units::Power;
    use sustain_workload::job::JobId;

    fn record(id: u64, start_h: f64, end_h: f64, kw: f64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            user: 0,
            submit: SimTime::ZERO,
            start: SimTime::from_hours(start_h),
            end: SimTime::from_hours(end_h),
            segments: vec![Segment {
                start: SimTime::from_hours(start_h),
                end: SimTime::from_hours(end_h),
                nodes: 2,
                power: Power::from_kw(kw),
            }],
            suspensions: 0,
            reshapes: 0,
            restarts: 0,
        }
    }

    fn trace() -> CarbonTrace {
        CarbonTrace::new(
            "t",
            TimeSeries::new(
                SimTime::ZERO,
                SimDuration::from_hours(1.0),
                vec![100.0, 200.0, 300.0, 400.0],
            ),
        )
    }

    #[test]
    fn feed_creates_expected_sensors() {
        let records = vec![record(1, 0.0, 2.0, 1.0), record(2, 1.0, 3.0, 2.0)];
        let tree = feed_from_records(
            &records,
            &trace(),
            SimDuration::from_hours(1.0),
            SimTime::from_hours(4.0),
        );
        assert!(tree.get("/system/power").is_some());
        assert!(tree.get("/grid/carbon_intensity").is_some());
        assert!(tree.get("/system/jobs/1/power").is_some());
        assert!(tree.get("/system/jobs/2/power").is_some());
        assert_eq!(tree.subtree("/system/jobs").len(), 2);
    }

    #[test]
    fn system_power_matches_overlap() {
        let records = vec![record(1, 0.0, 2.0, 1.0), record(2, 1.0, 3.0, 2.0)];
        let tree = feed_from_records(
            &records,
            &trace(),
            SimDuration::from_hours(1.0),
            SimTime::from_hours(4.0),
        );
        let s = tree.get("/system/power").unwrap();
        let values: Vec<f64> = s.readings().iter().map(|r| r.value).collect();
        // Hour 0: job1 only (1 kW); hour 1: both (3 kW); hour 2: job2 (2 kW).
        assert_eq!(values, vec![1000.0, 3000.0, 2000.0, 0.0]);
    }

    #[test]
    fn aggregation_query_over_jobs() {
        let records = vec![record(1, 0.0, 2.0, 1.0), record(2, 0.0, 2.0, 2.0)];
        let tree = feed_from_records(
            &records,
            &trace(),
            SimDuration::from_hours(1.0),
            SimTime::from_hours(2.0),
        );
        // Sum of per-job mean powers over the first two hours: 1 + 2 kW.
        let total = tree.aggregate_mean("/system/jobs", SimTime::ZERO, SimTime::from_hours(2.0));
        assert!((total - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn grid_sensor_tracks_trace() {
        let tree = feed_from_records(
            &[],
            &trace(),
            SimDuration::from_hours(1.0),
            SimTime::from_hours(4.0),
        );
        let s = tree.get("/grid/carbon_intensity").unwrap();
        let values: Vec<f64> = s.readings().iter().map(|r| r.value).collect();
        assert_eq!(values, vec![100.0, 200.0, 300.0, 400.0]);
    }
}
