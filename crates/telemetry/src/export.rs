//! Serialization of reports and rankings (CSV and JSON).
//!
//! Operational-data-analytics output must land in tools users already
//! have; CSV covers spreadsheets and plotting scripts, JSON covers
//! dashboards.

use crate::accounting::JobCarbonProfile;
use crate::carbon500::Carbon500Row;
use serde::Serialize;

/// Serializes any value to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> String {
    match serde_json::to_string_pretty(value) {
        Ok(s) => s,
        // The Value-based serializer has no failure path for in-memory
        // values; keep the loud failure in case a backend grows one.
        Err(e) => panic!("serialize value to JSON: {e}"),
    }
}

/// Escapes a CSV field (quotes fields containing separators or quotes).
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders job carbon profiles as CSV.
pub fn profiles_to_csv(profiles: &[JobCarbonProfile]) -> String {
    let mut out = String::from(
        "job_id,user,energy_kwh,carbon_kg,node_seconds,green_energy_fraction,effective_ci_g_per_kwh\n",
    );
    for p in profiles {
        out.push_str(&format!(
            "{},{},{:.6},{:.6},{:.1},{:.4},{:.2}\n",
            p.id.0,
            p.user,
            p.energy.kwh(),
            p.carbon.kg(),
            p.node_seconds,
            p.green_energy_fraction,
            p.effective_ci
        ));
    }
    out
}

/// Renders Carbon500 rows as CSV.
pub fn carbon500_to_csv(rows: &[Carbon500Row]) -> String {
    let mut out =
        String::from("rank,name,efficiency_gflops_hours_per_kg,hourly_carbon_kg,embodied_share\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.4}\n",
            r.rank,
            csv_field(&r.name),
            r.efficiency,
            r.hourly_carbon_kg,
            r.embodied_share
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_sim_core::units::{Carbon, Energy};
    use sustain_workload::job::JobId;

    fn profile() -> JobCarbonProfile {
        JobCarbonProfile {
            id: JobId(3),
            user: 9,
            energy: Energy::from_kwh(12.5),
            carbon: Carbon::from_kg(3.75),
            node_seconds: 7200.0,
            green_energy_fraction: 0.4,
            effective_ci: 300.0,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = profiles_to_csv(&[profile()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("job_id,"));
        assert!(lines[1].starts_with("3,9,12.5"));
        assert!(lines[1].contains("0.4000"));
    }

    #[test]
    fn json_roundtrips() {
        let json = to_json(&profile());
        let back: JobCarbonProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, profile());
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn carbon500_csv() {
        let rows = vec![Carbon500Row {
            rank: 1,
            name: "LRZ, Garching".into(),
            efficiency: 123.4,
            hourly_carbon_kg: 56.7,
            embodied_share: 0.8,
        }];
        let csv = carbon500_to_csv(&rows);
        assert!(csv.contains("\"LRZ, Garching\""));
        assert!(csv.contains("123.400"));
    }
}
