//! The Carbon500 ranking (§2.2) — experiment E12.
//!
//! The paper: *"we should extend the existing supercomputing rankings to
//! cover the carbon efficiency perspective (something like a Carbon500
//! list)."* An entry combines a system's sustained performance with the
//! carbon cost of one hour of operation — amortized embodied plus
//! operational at the site's grid intensity — and systems are ranked by
//! useful work per unit carbon.

use serde::{Deserialize, Serialize};
use sustain_carbon_model::metrics::carbon_efficiency_gflops_hours_per_kg;
use sustain_carbon_model::system::SystemInventory;
use sustain_sim_core::time::SimDuration;
use sustain_sim_core::units::{Carbon, CarbonIntensity};

/// One candidate system for the ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Carbon500Entry {
    /// System name.
    pub name: String,
    /// Sustained (HPL-like) performance, Gflop/s.
    pub sustained_gflops: f64,
    /// Average power draw, W.
    pub avg_power_w: f64,
    /// Site grid carbon intensity.
    pub grid_ci: CarbonIntensity,
    /// Total embodied carbon (components + platform).
    pub embodied: Carbon,
    /// Amortization lifetime.
    pub lifetime: SimDuration,
}

/// One computed row of the list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Carbon500Row {
    /// Rank (1-based).
    pub rank: usize,
    /// System name.
    pub name: String,
    /// Carbon efficiency, Gflop/s-hours per kg CO₂e.
    pub efficiency: f64,
    /// Hourly carbon cost, kg (embodied share + operational).
    pub hourly_carbon_kg: f64,
    /// Share of the hourly carbon that is embodied.
    pub embodied_share: f64,
}

impl Carbon500Entry {
    /// Builds an entry from a [`SystemInventory`] preset plus site and
    /// performance assumptions.
    pub fn from_inventory(
        inv: &SystemInventory,
        sustained_gflops: f64,
        grid_ci: CarbonIntensity,
        lifetime: SimDuration,
    ) -> Carbon500Entry {
        Carbon500Entry {
            name: inv.name.clone(),
            sustained_gflops,
            avg_power_w: inv.nominal_power.watts(),
            grid_ci,
            embodied: inv.total_embodied_with_platform(),
            lifetime,
        }
    }

    /// Carbon attributable to one hour of operation.
    pub fn hourly_carbon(&self) -> Carbon {
        let hours = self.lifetime.as_hours();
        let embodied_per_hour = self.embodied * (1.0 / hours);
        let kwh = self.avg_power_w / 1000.0;
        let operational = Carbon::from_grams(kwh * self.grid_ci.grams_per_kwh());
        embodied_per_hour + operational
    }

    /// Embodied share of the hourly carbon.
    pub fn embodied_share(&self) -> f64 {
        let total = self.hourly_carbon().grams();
        if total == 0.0 {
            return 0.0;
        }
        (self.embodied * (1.0 / self.lifetime.as_hours())).grams() / total
    }

    /// Carbon efficiency, Gflop/s-hours per kg.
    pub fn efficiency(&self) -> f64 {
        carbon_efficiency_gflops_hours_per_kg(self.sustained_gflops, self.hourly_carbon())
    }
}

/// Ranks entries by carbon efficiency (descending). Ties break by name
/// for determinism.
pub fn rank(entries: &[Carbon500Entry]) -> Vec<Carbon500Row> {
    let mut rows: Vec<Carbon500Row> = entries
        .iter()
        .map(|e| Carbon500Row {
            rank: 0,
            name: e.name.clone(),
            efficiency: e.efficiency(),
            hourly_carbon_kg: e.hourly_carbon().kg(),
            embodied_share: e.embodied_share(),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.efficiency
            .total_cmp(&a.efficiency)
            .then_with(|| a.name.cmp(&b.name))
    });
    for (i, row) in rows.iter_mut().enumerate() {
        row.rank = i + 1;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, gflops: f64, power_w: f64, ci: f64, embodied_t: f64) -> Carbon500Entry {
        Carbon500Entry {
            name: name.into(),
            sustained_gflops: gflops,
            avg_power_w: power_w,
            grid_ci: CarbonIntensity::from_grams_per_kwh(ci),
            embodied: Carbon::from_tons(embodied_t),
            lifetime: SimDuration::from_years(5.0),
        }
    }

    #[test]
    fn hourly_carbon_components() {
        // Embodied 43.8 t over 5 y (43800 h) → 1 kg/h; 1 MW at 100 g → 100 kg/h.
        let e = entry("x", 1e6, 1e6, 100.0, 43.8);
        assert!((e.hourly_carbon().kg() - 101.0).abs() < 0.01);
        assert!((e.embodied_share() - 1.0 / 101.0).abs() < 1e-4);
    }

    #[test]
    fn clean_grid_makes_embodied_dominate() {
        let clean = entry("clean", 1e6, 1e6, 20.0, 4380.0);
        // 100 kg/h embodied vs 20 kg/h operational.
        assert!(clean.embodied_share() > 0.8);
    }

    #[test]
    fn ranking_prefers_efficiency_not_raw_speed() {
        // "big" is faster but sited on coal; "small" wins per-carbon.
        let big = entry("big", 2e6, 20e6, 700.0, 5000.0);
        let small = entry("small", 1e6, 4e6, 20.0, 3000.0);
        let rows = rank(&[big, small]);
        assert_eq!(rows[0].name, "small");
        assert_eq!(rows[0].rank, 1);
        assert_eq!(rows[1].rank, 2);
        assert!(rows[0].efficiency > rows[1].efficiency);
    }

    #[test]
    fn inventory_entries_rank() {
        use sustain_carbon_model::system::SystemInventory;
        let lrz = Carbon500Entry::from_inventory(
            &SystemInventory::supermuc_ng(),
            19_500_000.0,                              // ~19.5 Pflop/s sustained
            CarbonIntensity::from_grams_per_kwh(20.0), // hydropower contract
            SimDuration::from_years(5.0),
        );
        let coal_twin = Carbon500Entry {
            name: "SuperMUC-NG (coal twin)".into(),
            grid_ci: CarbonIntensity::from_grams_per_kwh(1025.0),
            ..lrz.clone()
        };
        let rows = rank(&[coal_twin, lrz]);
        assert_eq!(rows[0].name, "SuperMUC-NG");
        // Siting on hydropower improves carbon efficiency by >5×.
        assert!(rows[0].efficiency > 5.0 * rows[1].efficiency);
    }

    #[test]
    fn deterministic_tie_break() {
        let a = entry("alpha", 1e6, 1e6, 100.0, 100.0);
        let b = entry("beta", 1e6, 1e6, 100.0, 100.0);
        let rows = rank(&[b, a]);
        assert_eq!(rows[0].name, "alpha");
    }
}
