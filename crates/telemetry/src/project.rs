//! Project compute-budget accounting (§3.4).
//!
//! The paper: *"HPC centers commonly allocate compute budget to projects
//! using units like core-hours, enabling project members to execute HPC
//! jobs ... This approach can be synergistically integrated with §3.3 to
//! enable automatic incentivized HPC job budget accounting."*
//!
//! A [`ProjectLedger`] tracks each project's node-hour allocation, charges
//! completed jobs through an [`IncentiveScheme`] (green node-hours at a
//! discount), and reports utilization and the carbon attributable to the
//! project.

use crate::incentive::IncentiveScheme;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use sustain_grid::green::GreenDetector;
use sustain_grid::trace::CarbonTrace;
use sustain_scheduler::metrics::JobRecord;
use sustain_sim_core::units::Carbon;

/// A project with a node-hour allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// Project identifier.
    pub id: u32,
    /// Granted allocation, node-hours.
    pub allocation_node_hours: f64,
}

/// Account state of one project.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProjectAccount {
    /// Jobs charged.
    pub jobs: usize,
    /// Face-value node-hours consumed.
    pub consumed_node_hours: f64,
    /// Node-hours actually charged (after green discounts).
    pub charged_node_hours: f64,
    /// Node-hours consumed inside green periods.
    pub green_node_hours: f64,
    /// Operational carbon attributed to the project.
    pub carbon: Carbon,
}

/// Error returned when charging against an unknown project.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownProject(pub u32);

impl std::fmt::Display for UnknownProject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown project id {}", self.0)
    }
}

impl std::error::Error for UnknownProject {}

/// Ledger of all projects at a site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectLedger {
    projects: BTreeMap<u32, Project>,
    accounts: BTreeMap<u32, ProjectAccount>,
    scheme: IncentiveScheme,
}

impl ProjectLedger {
    /// Creates a ledger with the given projects and incentive scheme.
    pub fn new(projects: Vec<Project>, scheme: IncentiveScheme) -> ProjectLedger {
        let accounts = projects
            .iter()
            .map(|p| (p.id, ProjectAccount::default()))
            .collect();
        ProjectLedger {
            projects: projects.into_iter().map(|p| (p.id, p)).collect(),
            accounts,
            scheme,
        }
    }

    /// Charges a completed job to a project. The project is billed the
    /// incentive-discounted node-hours; carbon is attributed at face
    /// value.
    pub fn charge(
        &mut self,
        project_id: u32,
        record: &JobRecord,
        trace: &CarbonTrace,
        detector: &GreenDetector,
    ) -> Result<&ProjectAccount, UnknownProject> {
        if !self.projects.contains_key(&project_id) {
            return Err(UnknownProject(project_id));
        }
        let bill = self.scheme.bill(record, trace, detector);
        match self.accounts.get_mut(&project_id) {
            Some(acc) => {
                acc.jobs += 1;
                acc.consumed_node_hours += bill.node_hours;
                acc.charged_node_hours += bill.charged_node_hours;
                acc.green_node_hours += bill.green_node_hours;
                acc.carbon += record.carbon(trace);
                Ok(acc)
            }
            None => Err(UnknownProject(project_id)),
        }
    }

    /// The account of a project.
    pub fn account(&self, project_id: u32) -> Option<&ProjectAccount> {
        self.accounts.get(&project_id)
    }

    /// Remaining charged budget (allocation − charged node-hours). May go
    /// negative: overdrawn projects typically lose scheduling priority.
    pub fn remaining(&self, project_id: u32) -> Option<f64> {
        let p = self.projects.get(&project_id)?;
        let a = self.accounts.get(&project_id)?;
        Some(p.allocation_node_hours - a.charged_node_hours)
    }

    /// `true` if the project has exhausted its allocation.
    pub fn is_exhausted(&self, project_id: u32) -> bool {
        self.remaining(project_id).is_some_and(|r| r <= 0.0)
    }

    /// Node-hours effectively "gifted" to a project by the green
    /// incentive (consumed − charged) — the §3.4 reward signal.
    pub fn incentive_gift(&self, project_id: u32) -> Option<f64> {
        let a = self.accounts.get(&project_id)?;
        Some(a.consumed_node_hours - a.charged_node_hours)
    }

    /// Iterates all project accounts.
    pub fn accounts(&self) -> impl Iterator<Item = (&u32, &ProjectAccount)> {
        self.accounts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_scheduler::metrics::Segment;
    use sustain_sim_core::series::TimeSeries;
    use sustain_sim_core::time::{SimDuration, SimTime};
    use sustain_sim_core::units::Power;
    use sustain_workload::job::JobId;

    fn trace() -> CarbonTrace {
        CarbonTrace::new(
            "t",
            TimeSeries::new(
                SimTime::ZERO,
                SimDuration::from_hours(1.0),
                vec![100.0, 100.0, 400.0, 400.0],
            ),
        )
    }

    fn record(start_h: f64, end_h: f64, nodes: u32) -> JobRecord {
        JobRecord {
            id: JobId(1),
            user: 0,
            submit: SimTime::ZERO,
            start: SimTime::from_hours(start_h),
            end: SimTime::from_hours(end_h),
            segments: vec![Segment {
                start: SimTime::from_hours(start_h),
                end: SimTime::from_hours(end_h),
                nodes,
                power: Power::from_kw(1.0),
            }],
            suspensions: 0,
            reshapes: 0,
            restarts: 0,
        }
    }

    fn ledger() -> ProjectLedger {
        ProjectLedger::new(
            vec![
                Project {
                    id: 1,
                    allocation_node_hours: 100.0,
                },
                Project {
                    id: 2,
                    allocation_node_hours: 5.0,
                },
            ],
            IncentiveScheme::default(),
        )
    }

    #[test]
    fn charge_discounts_green_hours() {
        let mut l = ledger();
        let det = GreenDetector::default();
        // 2 fully green hours × 4 nodes = 8 node-hours, charged 4.
        let acc = l.charge(1, &record(0.0, 2.0, 4), &trace(), &det).unwrap();
        assert_eq!(acc.jobs, 1);
        assert!((acc.consumed_node_hours - 8.0).abs() < 1e-9);
        assert!((acc.charged_node_hours - 4.0).abs() < 1e-9);
        assert!((l.incentive_gift(1).unwrap() - 4.0).abs() < 1e-9);
        assert!((l.remaining(1).unwrap() - 96.0).abs() < 1e-9);
    }

    #[test]
    fn carbon_attributed_at_face_value() {
        let mut l = ledger();
        let det = GreenDetector::default();
        l.charge(1, &record(2.0, 4.0, 2), &trace(), &det).unwrap();
        // 2 kWh at 400 g = 800 g.
        assert!((l.account(1).unwrap().carbon.grams() - 800.0).abs() < 1e-6);
    }

    #[test]
    fn exhaustion_detection() {
        let mut l = ledger();
        let det = GreenDetector::default();
        assert!(!l.is_exhausted(2));
        // 4 brown node-hours charged at face value against a 5 nh budget.
        l.charge(2, &record(2.0, 4.0, 2), &trace(), &det).unwrap();
        assert!(!l.is_exhausted(2));
        l.charge(2, &record(2.0, 4.0, 2), &trace(), &det).unwrap();
        assert!(l.is_exhausted(2), "remaining {:?}", l.remaining(2));
        assert!(l.remaining(2).unwrap() <= 0.0);
    }

    #[test]
    fn unknown_project_rejected() {
        let mut l = ledger();
        let det = GreenDetector::default();
        let err = l
            .charge(99, &record(0.0, 1.0, 1), &trace(), &det)
            .unwrap_err();
        assert_eq!(err, UnknownProject(99));
        assert_eq!(format!("{err}"), "unknown project id 99");
        assert!(l.remaining(99).is_none());
    }

    #[test]
    fn accounts_iterates_all() {
        let l = ledger();
        assert_eq!(l.accounts().count(), 2);
    }
}
