//! Per-job and per-user carbon accounting (§3.4).
//!
//! The paper: *"extend operational data analytics tools ... to quantify
//! and aggregate carbon emissions data derived from submitted HPC jobs;
//! only then a comprehensive HPC job carbon profile can be established and
//! integrated into job reports."* This module turns scheduler
//! [`JobRecord`]s plus a grid [`CarbonTrace`] into exactly that profile.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use sustain_grid::green::GreenDetector;
use sustain_grid::trace::CarbonTrace;
use sustain_scheduler::metrics::JobRecord;
use sustain_sim_core::units::{Carbon, Energy};
use sustain_workload::job::JobId;

/// Carbon profile of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobCarbonProfile {
    /// Job id.
    pub id: JobId,
    /// Owning user.
    pub user: u32,
    /// Total energy.
    pub energy: Energy,
    /// Total operational carbon.
    pub carbon: Carbon,
    /// Node-seconds consumed.
    pub node_seconds: f64,
    /// Fraction of the job's energy drawn during green periods.
    pub green_energy_fraction: f64,
    /// Emission-weighted intensity paid, g/kWh.
    pub effective_ci: f64,
}

/// Builds a job's carbon profile from its record and the grid trace.
pub fn profile_job(
    record: &JobRecord,
    trace: &CarbonTrace,
    detector: &GreenDetector,
) -> JobCarbonProfile {
    let energy = record.energy();
    let carbon = record.carbon(trace);
    // Green share: walk segments hour by hour against the detector.
    let threshold = detector.threshold_for(trace);
    let mut green_energy = 0.0;
    for seg in &record.segments {
        let mut t = seg.start;
        while t < seg.end {
            // Align sub-windows to trace bucket boundaries so each one is
            // classified by the bucket it actually lies in.
            let seg_end = trace.bucket_end_after(t).min(seg.end);
            let e = seg.power.for_duration(seg_end - t).kwh();
            if trace.at(t).grams_per_kwh() < threshold {
                green_energy += e;
            }
            t = seg_end;
        }
    }
    let total_kwh = energy.kwh();
    JobCarbonProfile {
        id: record.id,
        user: record.user,
        energy,
        carbon,
        node_seconds: record.node_seconds(),
        green_energy_fraction: if total_kwh > 0.0 {
            green_energy / total_kwh
        } else {
            0.0
        },
        effective_ci: if total_kwh > 0.0 {
            carbon.grams() / total_kwh
        } else {
            0.0
        },
    }
}

/// Aggregate carbon account of one user.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UserAccount {
    /// Jobs completed.
    pub jobs: usize,
    /// Total energy.
    pub energy: Energy,
    /// Total carbon.
    pub carbon: Carbon,
    /// Total node-seconds.
    pub node_seconds: f64,
}

/// Aggregates job profiles per user.
pub fn aggregate_by_user(profiles: &[JobCarbonProfile]) -> BTreeMap<u32, UserAccount> {
    let mut map: BTreeMap<u32, UserAccount> = BTreeMap::new();
    for p in profiles {
        let acc = map.entry(p.user).or_default();
        acc.jobs += 1;
        acc.energy += p.energy;
        acc.carbon += p.carbon;
        acc.node_seconds += p.node_seconds;
    }
    map
}

/// Site-level summary across all profiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteAccount {
    /// Jobs profiled.
    pub jobs: usize,
    /// Total energy.
    pub energy: Energy,
    /// Total carbon.
    pub carbon: Carbon,
    /// Mean green-energy fraction (energy-weighted).
    pub green_energy_fraction: f64,
}

/// Aggregates profiles into the site account.
pub fn site_account(profiles: &[JobCarbonProfile]) -> SiteAccount {
    let energy: Energy = profiles.iter().map(|p| p.energy).sum();
    let carbon: Carbon = profiles.iter().map(|p| p.carbon).sum();
    let green_kwh: f64 = profiles
        .iter()
        .map(|p| p.energy.kwh() * p.green_energy_fraction)
        .sum();
    SiteAccount {
        jobs: profiles.len(),
        energy,
        carbon,
        green_energy_fraction: if energy.kwh() > 0.0 {
            green_kwh / energy.kwh()
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_scheduler::metrics::Segment;
    use sustain_sim_core::series::TimeSeries;
    use sustain_sim_core::time::{SimDuration, SimTime};
    use sustain_sim_core::units::Power;

    fn trace() -> CarbonTrace {
        // 4 h: green, green, dirty, dirty (mean 250; detector 0.9 → 225).
        CarbonTrace::new(
            "t",
            TimeSeries::new(
                SimTime::ZERO,
                SimDuration::from_hours(1.0),
                vec![100.0, 100.0, 400.0, 400.0],
            ),
        )
    }

    fn record(user: u32, start_h: f64, end_h: f64) -> JobRecord {
        JobRecord {
            id: JobId(start_h as u64 + 1),
            user,
            submit: SimTime::ZERO,
            start: SimTime::from_hours(start_h),
            end: SimTime::from_hours(end_h),
            segments: vec![Segment {
                start: SimTime::from_hours(start_h),
                end: SimTime::from_hours(end_h),
                nodes: 2,
                power: Power::from_kw(1.0),
            }],
            suspensions: 0,
            reshapes: 0,
            restarts: 0,
        }
    }

    #[test]
    fn profile_green_job() {
        let p = profile_job(&record(1, 0.0, 2.0), &trace(), &GreenDetector::default());
        assert!((p.energy.kwh() - 2.0).abs() < 1e-9);
        assert!((p.carbon.grams() - 200.0).abs() < 1e-6);
        assert!((p.green_energy_fraction - 1.0).abs() < 1e-9);
        assert!((p.effective_ci - 100.0).abs() < 1e-9);
    }

    #[test]
    fn profile_mixed_job() {
        // Runs hours 1-3: one green hour, one dirty hour.
        let p = profile_job(&record(1, 1.0, 3.0), &trace(), &GreenDetector::default());
        assert!((p.green_energy_fraction - 0.5).abs() < 1e-9);
        assert!((p.carbon.grams() - 500.0).abs() < 1e-6);
        assert!((p.effective_ci - 250.0).abs() < 1e-9);
    }

    #[test]
    fn user_aggregation() {
        let tr = trace();
        let det = GreenDetector::default();
        let profiles = vec![
            profile_job(&record(1, 0.0, 1.0), &tr, &det),
            profile_job(&record(1, 2.0, 3.0), &tr, &det),
            profile_job(&record(2, 1.0, 2.0), &tr, &det),
        ];
        let by_user = aggregate_by_user(&profiles);
        assert_eq!(by_user.len(), 2);
        assert_eq!(by_user[&1].jobs, 2);
        assert!((by_user[&1].energy.kwh() - 2.0).abs() < 1e-9);
        // User 1: 100 g (green hour) + 400 g (dirty hour).
        assert!((by_user[&1].carbon.grams() - 500.0).abs() < 1e-6);
        assert_eq!(by_user[&2].jobs, 1);
    }

    #[test]
    fn site_summary_energy_weighted() {
        let tr = trace();
        let det = GreenDetector::default();
        let profiles = vec![
            profile_job(&record(1, 0.0, 2.0), &tr, &det), // 2 kWh green
            profile_job(&record(2, 2.0, 3.0), &tr, &det), // 1 kWh dirty
        ];
        let site = site_account(&profiles);
        assert_eq!(site.jobs, 2);
        assert!((site.energy.kwh() - 3.0).abs() < 1e-9);
        assert!((site.green_energy_fraction - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_profiles_are_safe() {
        let site = site_account(&[]);
        assert_eq!(site.jobs, 0);
        assert_eq!(site.green_energy_fraction, 0.0);
    }
}
