//! User-facing job carbon reports (§3.4).
//!
//! The paper: carbon data should be "integrated into job reports, ensuring
//! accessibility to HPC users. Moreover, the carbon footprint data can
//! also be presented using analogies that resonate with typical HPC system
//! users. For example, by equating the emitted carbon to the carbon
//! produced by driving a car between two regions within a country."

use crate::accounting::JobCarbonProfile;
use serde::{Deserialize, Serialize};
use sustain_sim_core::units::Carbon;

/// Average combustion-car emissions, g CO₂e per km (EU fleet average).
pub const CAR_G_PER_KM: f64 = 120.0;

/// CO₂ sequestered by one tree in one year, kg.
pub const TREE_KG_PER_YEAR: f64 = 21.0;

/// Reference driving distances for the car analogy (the paper's "between
/// two regions within a country").
pub const DRIVES: [(&str, f64); 4] = [
    ("Munich → Garching", 13.0),
    ("Munich → Nuremberg", 170.0),
    ("Munich → Berlin", 585.0),
    ("Lisbon → Helsinki", 4_400.0),
];

/// Kilometres of average-car driving equivalent to `carbon`.
pub fn car_km_equivalent(carbon: Carbon) -> f64 {
    carbon.grams() / CAR_G_PER_KM
}

/// Tree-years of sequestration equivalent to `carbon`.
pub fn tree_years_equivalent(carbon: Carbon) -> f64 {
    carbon.kg() / TREE_KG_PER_YEAR
}

/// The longest reference drive not exceeding the carbon's car-km
/// equivalent, if any.
pub fn nearest_drive(carbon: Carbon) -> Option<(&'static str, f64)> {
    let km = car_km_equivalent(carbon);
    DRIVES.iter().rfind(|(_, d)| *d <= km).copied()
}

/// A rendered job carbon report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Job id value.
    pub job_id: u64,
    /// Energy, kWh.
    pub energy_kwh: f64,
    /// Carbon, kg CO₂e.
    pub carbon_kg: f64,
    /// Effective intensity paid, g/kWh.
    pub effective_ci: f64,
    /// Green-energy fraction.
    pub green_fraction: f64,
    /// Car-km analogy.
    pub car_km: f64,
    /// Human-readable analogy line.
    pub analogy: String,
}

/// Builds the report for one profile.
pub fn render(profile: &JobCarbonProfile) -> JobReport {
    let km = car_km_equivalent(profile.carbon);
    let analogy = match nearest_drive(profile.carbon) {
        Some((name, d)) => {
            format!("equivalent to driving {km:.0} km by car (more than {name}, {d:.0} km)")
        }
        None => format!("equivalent to driving {km:.1} km by car"),
    };
    JobReport {
        job_id: profile.id.0,
        energy_kwh: profile.energy.kwh(),
        carbon_kg: profile.carbon.kg(),
        effective_ci: profile.effective_ci,
        green_fraction: profile.green_energy_fraction,
        car_km: km,
        analogy,
    }
}

/// Formats the report as the text block appended to job epilogues.
pub fn to_text(report: &JobReport) -> String {
    format!(
        "==== Job {} carbon profile ====\n\
         energy:        {:.2} kWh\n\
         carbon:        {:.3} kg CO2e ({:.1} g/kWh effective)\n\
         green energy:  {:.1} %\n\
         analogy:       {}\n",
        report.job_id,
        report.energy_kwh,
        report.carbon_kg,
        report.effective_ci,
        report.green_fraction * 100.0,
        report.analogy
    )
}

/// Renders a site's monthly operations report as markdown: the §3.4
/// operational-data-analytics deliverable a center would publish to its
/// users (site totals, green share, top emitters, and the car analogy).
pub fn site_markdown_report(
    title: &str,
    site: &crate::accounting::SiteAccount,
    by_user: &std::collections::BTreeMap<u32, crate::accounting::UserAccount>,
    top_n: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n\n"));
    out.push_str("## Site totals\n\n");
    out.push_str(&format!("- jobs completed: **{}**\n", site.jobs));
    out.push_str(&format!("- energy: **{:.1} MWh**\n", site.energy.mwh()));
    out.push_str(&format!(
        "- operational carbon: **{:.2} t CO2e** ({:.0} km by car)\n",
        site.carbon.tons(),
        car_km_equivalent(site.carbon)
    ));
    out.push_str(&format!(
        "- green-energy share: **{:.1} %**\n\n",
        site.green_energy_fraction * 100.0
    ));
    out.push_str(&format!("## Top {top_n} users by carbon\n\n"));
    out.push_str("| user | jobs | energy kWh | carbon kg | tree-years |\n");
    out.push_str("|---|---|---|---|---|\n");
    let mut users: Vec<_> = by_user.iter().collect();
    users.sort_by_key(|(_, acc)| std::cmp::Reverse(acc.carbon));
    for (user, acc) in users.into_iter().take(top_n) {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.2} | {:.2} |\n",
            user,
            acc.jobs,
            acc.energy.kwh(),
            acc.carbon.kg(),
            tree_years_equivalent(acc.carbon)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_sim_core::units::Energy;
    use sustain_workload::job::JobId;

    fn profile(carbon_kg: f64) -> JobCarbonProfile {
        JobCarbonProfile {
            id: JobId(42),
            user: 7,
            energy: Energy::from_kwh(100.0),
            carbon: Carbon::from_kg(carbon_kg),
            node_seconds: 1000.0,
            green_energy_fraction: 0.25,
            effective_ci: carbon_kg * 1000.0 / 100.0,
        }
    }

    #[test]
    fn car_km_math() {
        // 12 kg at 120 g/km = 100 km.
        assert!((car_km_equivalent(Carbon::from_kg(12.0)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn tree_years_math() {
        assert!((tree_years_equivalent(Carbon::from_kg(42.0)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nearest_drive_selection() {
        // 2.4 kg → 20 km → beyond Garching (13) but short of Nuremberg.
        let d = nearest_drive(Carbon::from_kg(2.4)).unwrap();
        assert_eq!(d.0, "Munich → Garching");
        // 100 kg → 833 km → beyond Berlin.
        let d = nearest_drive(Carbon::from_kg(100.0)).unwrap();
        assert_eq!(d.0, "Munich → Berlin");
        // Tiny job: no reference drive.
        assert!(nearest_drive(Carbon::from_grams(100.0)).is_none());
    }

    #[test]
    fn render_and_text() {
        let r = render(&profile(24.0));
        assert_eq!(r.job_id, 42);
        assert!((r.car_km - 200.0).abs() < 1e-9);
        assert!(r.analogy.contains("Nuremberg"));
        let text = to_text(&r);
        assert!(text.contains("Job 42"));
        assert!(text.contains("24.000 kg CO2e"));
        assert!(text.contains("25.0 %"));
    }

    #[test]
    fn site_markdown_report_contents() {
        use crate::accounting::{SiteAccount, UserAccount};
        use sustain_sim_core::units::Energy;
        let site = SiteAccount {
            jobs: 42,
            energy: Energy::from_mwh(3.5),
            carbon: Carbon::from_tons(1.2),
            green_energy_fraction: 0.31,
        };
        let mut by_user = std::collections::BTreeMap::new();
        by_user.insert(
            7,
            UserAccount {
                jobs: 10,
                energy: Energy::from_kwh(900.0),
                carbon: Carbon::from_kg(400.0),
                node_seconds: 1e6,
            },
        );
        by_user.insert(
            9,
            UserAccount {
                jobs: 2,
                energy: Energy::from_kwh(100.0),
                carbon: Carbon::from_kg(900.0),
                node_seconds: 2e5,
            },
        );
        let md = site_markdown_report("January report", &site, &by_user, 1);
        assert!(md.starts_with("# January report"));
        assert!(md.contains("**42**"));
        assert!(md.contains("3.5 MWh"));
        assert!(md.contains("31.0 %"));
        // Only the top-1 user appears, and it is the highest emitter (9).
        assert!(md.contains("| 9 | 2 |"));
        assert!(!md.contains("| 7 | 10 |"));
    }

    #[test]
    fn small_job_analogy_has_no_drive() {
        let r = render(&JobCarbonProfile {
            carbon: Carbon::from_grams(240.0),
            ..profile(0.0)
        });
        assert!((r.car_km - 2.0).abs() < 1e-9);
        assert!(!r.analogy.contains("more than"));
    }
}
