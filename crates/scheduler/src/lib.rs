//! # sustain-scheduler
//!
//! An event-driven RJMS (resource and job management system) simulator —
//! the substrate for §3.2 and §3.3 of *"Sustainability in HPC: Vision and
//! Opportunities"*: FCFS and EASY-backfilling baselines, a carbon-aware
//! backfilling policy that delays delayable jobs into green periods, a
//! carbon-aware checkpoint/suspend/resume mechanism, and malleable job
//! reshaping coupled to a time-varying (carbon-derived) power budget.
//!
//! * [`cluster`] — cluster description and allocation bookkeeping;
//! * [`queue`] — multi-queue admission rules (§3.4);
//! * [`sim`] — the simulator and its policies;
//! * [`metrics`] — per-job records and aggregate outcomes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod malleable;
pub mod metrics;
pub mod queue;
pub mod sim;

pub use cluster::Cluster;
pub use metrics::{JobRecord, Segment, SimOutcome};
pub use queue::{QueueConfig, QueueSet};
pub use sim::{simulate, try_simulate, CarbonAwareCfg, CheckpointCfg, Policy, SimConfig};
