//! Multi-queue RJMS configuration (§3.4).
//!
//! The paper: HPC centers configure *"multiple queues ... characterized by
//! varying job scheduling priorities, constraints on the number of
//! permissible nodes per job, and maximum job run times"*. Queues here
//! validate job admission and contribute a priority used by the
//! scheduler's pending-order and by the incentive accounting in the
//! telemetry crate.

use serde::{Deserialize, Serialize};
use sustain_sim_core::error::{ConfigError, Validate};
use sustain_sim_core::hash::{CanonicalHash, CanonicalHasher};
use sustain_sim_core::time::SimDuration;
use sustain_workload::job::Job;

impl CanonicalHash for QueueConfig {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_str(&self.name);
        hasher.write_u32(self.priority);
        hasher.write_u32(self.min_nodes);
        hasher.write_u32(self.max_nodes);
        self.max_walltime.canonical_hash_into(hasher);
    }
}

impl CanonicalHash for QueueSet {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        self.queues.canonical_hash_into(hasher);
    }
}

/// One queue (partition) definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Queue name.
    pub name: String,
    /// Scheduling priority (higher = scheduled first).
    pub priority: u32,
    /// Node range a job must request to be admitted.
    pub min_nodes: u32,
    /// Largest admissible node request.
    pub max_nodes: u32,
    /// Longest admissible walltime estimate.
    pub max_walltime: SimDuration,
}

impl QueueConfig {
    /// `true` if the queue admits the job.
    pub fn admits(&self, job: &Job) -> bool {
        job.requested_nodes >= self.min_nodes
            && job.requested_nodes <= self.max_nodes
            && job.walltime_estimate <= self.max_walltime
    }
}

impl Validate for QueueConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.max_nodes == 0 {
            return Err(ConfigError::new(
                "QueueConfig",
                "max_nodes",
                format!("queue '{}' admits no node count (max_nodes = 0)", self.name),
            ));
        }
        if self.min_nodes > self.max_nodes {
            return Err(ConfigError::new(
                "QueueConfig",
                "min_nodes..max_nodes",
                format!(
                    "queue '{}' requires min_nodes ({}) <= max_nodes ({})",
                    self.name, self.min_nodes, self.max_nodes
                ),
            ));
        }
        if self.max_walltime.is_zero() {
            return Err(ConfigError::new(
                "QueueConfig",
                "max_walltime",
                format!(
                    "queue '{}' admits no walltime (max_walltime = 0)",
                    self.name
                ),
            ));
        }
        Ok(())
    }
}

/// An ordered set of queues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueSet {
    /// Queues, any order.
    pub queues: Vec<QueueConfig>,
}

impl QueueSet {
    /// A typical three-queue layout: test / general / large.
    pub fn typical(system_nodes: u32) -> QueueSet {
        QueueSet {
            queues: vec![
                QueueConfig {
                    name: "test".into(),
                    priority: 10,
                    min_nodes: 1,
                    max_nodes: 8.min(system_nodes),
                    max_walltime: SimDuration::from_mins(30.0),
                },
                QueueConfig {
                    name: "general".into(),
                    priority: 5,
                    min_nodes: 1,
                    max_nodes: system_nodes / 4,
                    max_walltime: SimDuration::from_hours(48.0),
                },
                QueueConfig {
                    name: "large".into(),
                    priority: 3,
                    min_nodes: system_nodes / 4 + 1,
                    max_nodes: system_nodes,
                    max_walltime: SimDuration::from_hours(24.0),
                },
            ],
        }
    }

    /// The highest-priority queue that admits the job, if any.
    pub fn classify(&self, job: &Job) -> Option<&QueueConfig> {
        self.queues
            .iter()
            .filter(|q| q.admits(job))
            .max_by_key(|q| q.priority)
    }
}

impl Validate for QueueSet {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.queues.is_empty() {
            return Err(ConfigError::new(
                "QueueSet",
                "queues",
                "at least one queue is required (use None for a single FIFO)",
            ));
        }
        for q in &self.queues {
            q.validate().map_err(|e| e.nested("QueueSet"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_sim_core::time::SimTime;
    use sustain_workload::job::JobBuilder;

    fn job(nodes: u32, walltime_h: f64) -> Job {
        JobBuilder::new(
            1,
            SimTime::ZERO,
            nodes,
            SimDuration::from_hours(walltime_h / 2.0),
        )
        .walltime(SimDuration::from_hours(walltime_h))
        .build()
    }

    #[test]
    fn admission_rules() {
        let qs = QueueSet::typical(1024);
        let q = &qs.queues[1]; // general: 1..=256 nodes, ≤48 h
        assert!(q.admits(&job(128, 10.0)));
        assert!(!q.admits(&job(512, 10.0)));
        assert!(!q.admits(&job(128, 72.0)));
    }

    #[test]
    fn classification_prefers_high_priority() {
        let qs = QueueSet::typical(1024);
        // A tiny short job is admitted by both test and general; test wins.
        let j = job(4, 0.4);
        assert_eq!(qs.classify(&j).unwrap().name, "test");
        // A big job lands in "large".
        let j = job(512, 10.0);
        assert_eq!(qs.classify(&j).unwrap().name, "large");
    }

    #[test]
    fn unadmittable_job_classifies_none() {
        let qs = QueueSet::typical(64);
        // 64-node system: large queue tops out at 64 nodes.
        let j = job(65, 1.0);
        assert!(qs.classify(&j).is_none());
        // Over-walltime everywhere.
        let j = job(4, 100.0);
        assert!(qs.classify(&j).is_none());
    }
}
