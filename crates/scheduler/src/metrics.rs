//! Per-job records and aggregate scheduling/carbon metrics.

use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use sustain_grid::trace::CarbonTrace;
use sustain_sim_core::stats::Summary;
use sustain_sim_core::time::{SimDuration, SimTime};
use sustain_sim_core::units::{Carbon, Energy, Power};
use sustain_workload::job::JobId;

/// One contiguous execution segment of a job (allocation and power are
/// constant within a segment; malleability and suspend/resume create
/// multiple segments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
    /// Nodes allocated during the segment.
    pub nodes: u32,
    /// Total power drawn during the segment.
    pub power: Power,
}

impl Segment {
    /// Segment duration.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }

    /// Energy drawn in this segment.
    pub fn energy(&self) -> Energy {
        self.power.for_duration(self.duration())
    }

    /// Carbon emitted in this segment under a carbon trace.
    pub fn carbon(&self, trace: &CarbonTrace) -> Carbon {
        self.energy()
            .carbon_at(trace.mean_over(self.start, self.end))
    }

    /// Node-seconds consumed.
    pub fn node_seconds(&self) -> f64 {
        self.nodes as f64 * self.duration().as_secs()
    }
}

/// Completed-job record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Owning user.
    pub user: u32,
    /// Submission time.
    pub submit: SimTime,
    /// First start time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// Execution segments (≥1).
    pub segments: Vec<Segment>,
    /// Times the job was suspended (checkpointed away).
    pub suspensions: u32,
    /// Times the job was reshaped (malleability events).
    pub reshapes: u32,
    /// Times the job was restarted after a node failure.
    pub restarts: u32,
}

impl JobRecord {
    /// Queue wait before first start.
    pub fn wait(&self) -> SimDuration {
        self.start - self.submit
    }

    /// Total wall time from first start to completion (including suspended
    /// gaps).
    pub fn span(&self) -> SimDuration {
        self.end - self.start
    }

    /// Turnaround: submit to completion.
    pub fn turnaround(&self) -> SimDuration {
        self.end - self.submit
    }

    /// Actual computing wall time (sum of segment durations).
    pub fn compute_time(&self) -> SimDuration {
        self.segments
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Bounded slowdown with the conventional 10-second bound.
    pub fn bounded_slowdown(&self) -> f64 {
        let rt = self.compute_time().as_secs().max(10.0);
        ((self.wait().as_secs() + rt) / rt).max(1.0)
    }

    /// Total energy over all segments.
    pub fn energy(&self) -> Energy {
        self.segments.iter().map(Segment::energy).sum()
    }

    /// Total carbon over all segments under a carbon trace.
    pub fn carbon(&self, trace: &CarbonTrace) -> Carbon {
        self.segments.iter().map(|s| s.carbon(trace)).sum()
    }

    /// Total node-seconds.
    pub fn node_seconds(&self) -> f64 {
        self.segments.iter().map(Segment::node_seconds).sum()
    }
}

/// Hot-path work counters for one simulation run: how much work the
/// event loop did, not what it decided. The numbers are the profile
/// baseline for perf work (`--stats` on the CLI) and are expected to
/// change across optimizations — golden byte-identity snapshots strip
/// this block, and it is serialized last so outcome JSONs written
/// before the counters existed (e.g. sweep trace caches) still load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct HotPathStats {
    /// Events dispatched by the main loop.
    pub events: u64,
    /// Full scheduling passes executed.
    pub schedule_passes: u64,
    /// Scheduling passes skipped by the quiescence fast path (nothing
    /// changed since a pass that started nothing).
    pub schedule_skips: u64,
    /// Fair-share pending-queue resorts actually performed.
    pub resorts_taken: u64,
    /// Resorts skipped because no usage was recorded since the last one.
    pub resorts_skipped: u64,
    /// CI/budget point lookups served from the cached current bucket.
    pub trace_bucket_hits: u64,
    /// CI/budget point lookups that crossed into a new bucket.
    pub trace_bucket_misses: u64,
    /// Times a planning scratch buffer had to grow its allocation
    /// (plateaus after warm-up: the steady-state schedule path performs
    /// no heap allocation).
    pub scratch_grows: u64,
    /// Speculative earliest-slot computations fanned out against a pass
    /// snapshot (one per candidate job per speculative planning round).
    pub spec_planned: u64,
    /// Speculative slots that re-verified feasible at commit time and
    /// were used as-is (provably equal to the serial planner's answer).
    pub spec_hits: u64,
    /// Speculative slots invalidated by an earlier commit in the same
    /// round and recomputed serially against the live profile.
    pub spec_invalidations: u64,
    /// Pending jobs repositioned by the incremental fair-share fix-up
    /// (remove + sorted re-insert of dirty users' jobs; the work that
    /// replaced full resorts).
    pub fs_repositions: u64,
    /// Renormalizations of the fair-share usage epoch (exact
    /// power-of-two rescale of every user's normalized usage; rare).
    pub fs_renorms: u64,
}

impl HotPathStats {
    /// Adds another run's counters into this one.
    pub fn absorb(&mut self, other: &HotPathStats) {
        self.events += other.events;
        self.schedule_passes += other.schedule_passes;
        self.schedule_skips += other.schedule_skips;
        self.resorts_taken += other.resorts_taken;
        self.resorts_skipped += other.resorts_skipped;
        self.trace_bucket_hits += other.trace_bucket_hits;
        self.trace_bucket_misses += other.trace_bucket_misses;
        self.scratch_grows += other.scratch_grows;
        self.spec_planned += other.spec_planned;
        self.spec_hits += other.spec_hits;
        self.spec_invalidations += other.spec_invalidations;
        self.fs_repositions += other.fs_repositions;
        self.fs_renorms += other.fs_renorms;
    }
}

// Counters are append-only across PRs: a manual impl (instead of the
// derive, which errors on missing fields) defaults absent counters to 0
// so outcome JSONs serialized before a counter existed still load.
impl Deserialize for HotPathStats {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| -> Result<u64, DeError> {
            match v.get(name) {
                Some(x) => u64::from_value(x),
                None => Ok(0),
            }
        };
        Ok(HotPathStats {
            events: field("events")?,
            schedule_passes: field("schedule_passes")?,
            schedule_skips: field("schedule_skips")?,
            resorts_taken: field("resorts_taken")?,
            resorts_skipped: field("resorts_skipped")?,
            trace_bucket_hits: field("trace_bucket_hits")?,
            trace_bucket_misses: field("trace_bucket_misses")?,
            scratch_grows: field("scratch_grows")?,
            spec_planned: field("spec_planned")?,
            spec_hits: field("spec_hits")?,
            spec_invalidations: field("spec_invalidations")?,
            fs_repositions: field("fs_repositions")?,
            fs_renorms: field("fs_renorms")?,
        })
    }
}

/// Process-wide accumulators: every `simulate` run (including the
/// parallel sweep workers) folds its counters in, so the CLI can print
/// one aggregate block after a multi-scenario command.
static TOTAL_EVENTS: AtomicU64 = AtomicU64::new(0);
static TOTAL_PASSES: AtomicU64 = AtomicU64::new(0);
static TOTAL_SKIPS: AtomicU64 = AtomicU64::new(0);
static TOTAL_RESORTS_TAKEN: AtomicU64 = AtomicU64::new(0);
static TOTAL_RESORTS_SKIPPED: AtomicU64 = AtomicU64::new(0);
static TOTAL_TRACE_HITS: AtomicU64 = AtomicU64::new(0);
static TOTAL_TRACE_MISSES: AtomicU64 = AtomicU64::new(0);
static TOTAL_SCRATCH_GROWS: AtomicU64 = AtomicU64::new(0);
static TOTAL_SPEC_PLANNED: AtomicU64 = AtomicU64::new(0);
static TOTAL_SPEC_HITS: AtomicU64 = AtomicU64::new(0);
static TOTAL_SPEC_INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FS_REPOSITIONS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FS_RENORMS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_hot_path_totals(s: &HotPathStats) {
    TOTAL_EVENTS.fetch_add(s.events, Ordering::Relaxed);
    TOTAL_PASSES.fetch_add(s.schedule_passes, Ordering::Relaxed);
    TOTAL_SKIPS.fetch_add(s.schedule_skips, Ordering::Relaxed);
    TOTAL_RESORTS_TAKEN.fetch_add(s.resorts_taken, Ordering::Relaxed);
    TOTAL_RESORTS_SKIPPED.fetch_add(s.resorts_skipped, Ordering::Relaxed);
    TOTAL_TRACE_HITS.fetch_add(s.trace_bucket_hits, Ordering::Relaxed);
    TOTAL_TRACE_MISSES.fetch_add(s.trace_bucket_misses, Ordering::Relaxed);
    TOTAL_SCRATCH_GROWS.fetch_add(s.scratch_grows, Ordering::Relaxed);
    TOTAL_SPEC_PLANNED.fetch_add(s.spec_planned, Ordering::Relaxed);
    TOTAL_SPEC_HITS.fetch_add(s.spec_hits, Ordering::Relaxed);
    TOTAL_SPEC_INVALIDATIONS.fetch_add(s.spec_invalidations, Ordering::Relaxed);
    TOTAL_FS_REPOSITIONS.fetch_add(s.fs_repositions, Ordering::Relaxed);
    TOTAL_FS_RENORMS.fetch_add(s.fs_renorms, Ordering::Relaxed);
}

/// Snapshot of the process-wide hot-path counters aggregated over every
/// simulation run so far (all threads).
pub fn hot_path_totals() -> HotPathStats {
    HotPathStats {
        events: TOTAL_EVENTS.load(Ordering::Relaxed),
        schedule_passes: TOTAL_PASSES.load(Ordering::Relaxed),
        schedule_skips: TOTAL_SKIPS.load(Ordering::Relaxed),
        resorts_taken: TOTAL_RESORTS_TAKEN.load(Ordering::Relaxed),
        resorts_skipped: TOTAL_RESORTS_SKIPPED.load(Ordering::Relaxed),
        trace_bucket_hits: TOTAL_TRACE_HITS.load(Ordering::Relaxed),
        trace_bucket_misses: TOTAL_TRACE_MISSES.load(Ordering::Relaxed),
        scratch_grows: TOTAL_SCRATCH_GROWS.load(Ordering::Relaxed),
        spec_planned: TOTAL_SPEC_PLANNED.load(Ordering::Relaxed),
        spec_hits: TOTAL_SPEC_HITS.load(Ordering::Relaxed),
        spec_invalidations: TOTAL_SPEC_INVALIDATIONS.load(Ordering::Relaxed),
        fs_repositions: TOTAL_FS_REPOSITIONS.load(Ordering::Relaxed),
        fs_renorms: TOTAL_FS_RENORMS.load(Ordering::Relaxed),
    }
}

/// Aggregate outcome of a simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct SimOutcome {
    /// Per-job records (completed jobs only).
    pub records: Vec<JobRecord>,
    /// Jobs still pending/running at the horizon.
    pub unfinished: usize,
    /// Time of the last completion.
    pub makespan: SimTime,
    /// Wait-time summary, seconds.
    pub wait: Summary,
    /// Bounded-slowdown summary.
    pub slowdown: Summary,
    /// Allocated node-seconds / (nodes × makespan).
    pub utilization: f64,
    /// Total job energy.
    pub job_energy: Energy,
    /// Idle-node energy over the run.
    pub idle_energy: Energy,
    /// Total operational carbon (jobs + idle).
    pub carbon: Carbon,
    /// Emission-weighted mean intensity paid by job energy, g/kWh.
    pub effective_job_ci: f64,
    /// Seconds during which running power exceeded the power budget.
    pub budget_violation_seconds: f64,
    /// Event-loop work counters (volatile across perf changes; excluded
    /// from golden snapshots). Declared last so it serializes after the
    /// result fields.
    pub hot_path: HotPathStats,
}

impl Deserialize for SimOutcome {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(SimOutcome {
            records: Vec::<JobRecord>::from_value(serde::get_field(v, "records")?)?,
            unfinished: usize::from_value(serde::get_field(v, "unfinished")?)?,
            makespan: SimTime::from_value(serde::get_field(v, "makespan")?)?,
            wait: Summary::from_value(serde::get_field(v, "wait")?)?,
            slowdown: Summary::from_value(serde::get_field(v, "slowdown")?)?,
            utilization: f64::from_value(serde::get_field(v, "utilization")?)?,
            job_energy: Energy::from_value(serde::get_field(v, "job_energy")?)?,
            idle_energy: Energy::from_value(serde::get_field(v, "idle_energy")?)?,
            carbon: Carbon::from_value(serde::get_field(v, "carbon")?)?,
            effective_job_ci: f64::from_value(serde::get_field(v, "effective_job_ci")?)?,
            budget_violation_seconds: f64::from_value(serde::get_field(
                v,
                "budget_violation_seconds",
            )?)?,
            // Absent in outcomes serialized before the counter block
            // existed (sweep trace caches): default instead of erroring.
            hot_path: match v.get("hot_path") {
                Some(hp) => HotPathStats::from_value(hp)?,
                None => HotPathStats::default(),
            },
        })
    }
}

impl SimOutcome {
    /// Builds the aggregate outcome from records plus run-level numbers.
    #[allow(clippy::too_many_arguments)]
    pub fn from_records(
        records: Vec<JobRecord>,
        unfinished: usize,
        total_nodes: u32,
        trace: Option<&CarbonTrace>,
        idle_energy: Energy,
        idle_carbon: Carbon,
        budget_violation_seconds: f64,
    ) -> SimOutcome {
        let makespan = records.iter().map(|r| r.end).max().unwrap_or(SimTime::ZERO);
        let waits: Vec<f64> = records.iter().map(|r| r.wait().as_secs()).collect();
        let slowdowns: Vec<f64> = records.iter().map(|r| r.bounded_slowdown()).collect();
        let node_seconds: f64 = records.iter().map(|r| r.node_seconds()).sum();
        let capacity = total_nodes as f64 * makespan.as_secs();
        let job_energy: Energy = records.iter().map(|r| r.energy()).sum();
        let job_carbon: Carbon = trace
            .map(|t| records.iter().map(|r| r.carbon(t)).sum())
            .unwrap_or(Carbon::ZERO);
        SimOutcome {
            unfinished,
            makespan,
            wait: Summary::of(&waits),
            slowdown: Summary::of(&slowdowns),
            utilization: if capacity > 0.0 {
                node_seconds / capacity
            } else {
                0.0
            },
            job_energy,
            idle_energy,
            carbon: job_carbon + idle_carbon,
            effective_job_ci: if job_energy.kwh() > 0.0 {
                job_carbon.grams() / job_energy.kwh()
            } else {
                0.0
            },
            budget_violation_seconds,
            records,
            hot_path: HotPathStats::default(),
        }
    }
}

/// Reconstructs the cluster's power profile from job records: mean total
/// job power per `step` bucket over `[0, horizon)`. The verification
/// artifact for power-budget experiments (compare against the budget
/// series) and the input for facility-level integration.
pub fn power_profile(
    records: &[JobRecord],
    step: SimDuration,
    horizon: SimTime,
) -> sustain_sim_core::series::TimeSeries {
    assert!(!step.is_zero(), "step must be positive");
    let buckets = (horizon.as_secs() / step.as_secs()).ceil() as usize;
    let mut energy_j = vec![0.0f64; buckets.max(1)];
    for rec in records {
        for seg in &rec.segments {
            // Distribute the segment's energy into overlapping buckets.
            let mut t = seg.start;
            while t < seg.end {
                let idx = ((t.as_secs() / step.as_secs()) as usize).min(energy_j.len() - 1);
                let bucket_end = SimTime::from_secs((idx as f64 + 1.0) * step.as_secs());
                let until = bucket_end.min(seg.end);
                if until <= t {
                    // Segment extends past the horizon (clamped bucket):
                    // attribute the tail to the last bucket and stop.
                    energy_j[idx] += seg.power.watts() * (seg.end - t).as_secs();
                    break;
                }
                energy_j[idx] += seg.power.watts() * (until - t).as_secs();
                t = until;
            }
        }
    }
    let values = energy_j.into_iter().map(|e| e / step.as_secs()).collect();
    sustain_sim_core::series::TimeSeries::new(SimTime::ZERO, step, values)
}

/// Reconstructs the allocated-node profile (mean allocated nodes per
/// bucket) from job records.
pub fn utilization_profile(
    records: &[JobRecord],
    step: SimDuration,
    horizon: SimTime,
    total_nodes: u32,
) -> sustain_sim_core::series::TimeSeries {
    assert!(total_nodes > 0);
    let buckets = (horizon.as_secs() / step.as_secs()).ceil() as usize;
    let mut node_seconds = vec![0.0f64; buckets.max(1)];
    for rec in records {
        for seg in &rec.segments {
            let mut t = seg.start;
            while t < seg.end {
                let idx = ((t.as_secs() / step.as_secs()) as usize).min(node_seconds.len() - 1);
                let bucket_end = SimTime::from_secs((idx as f64 + 1.0) * step.as_secs());
                let until = bucket_end.min(seg.end);
                if until <= t {
                    node_seconds[idx] += seg.nodes as f64 * (seg.end - t).as_secs();
                    break;
                }
                node_seconds[idx] += seg.nodes as f64 * (until - t).as_secs();
                t = until;
            }
        }
    }
    let denom = step.as_secs() * total_nodes as f64;
    let values = node_seconds.into_iter().map(|ns| ns / denom).collect();
    sustain_sim_core::series::TimeSeries::new(SimTime::ZERO, step, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_sim_core::series::TimeSeries;

    fn seg(start_h: f64, end_h: f64, nodes: u32, kw: f64) -> Segment {
        Segment {
            start: SimTime::from_hours(start_h),
            end: SimTime::from_hours(end_h),
            nodes,
            power: Power::from_kw(kw),
        }
    }

    fn record() -> JobRecord {
        JobRecord {
            id: JobId(1),
            user: 0,
            submit: SimTime::from_hours(0.0),
            start: SimTime::from_hours(1.0),
            end: SimTime::from_hours(4.0),
            segments: vec![seg(1.0, 2.0, 4, 2.0), seg(3.0, 4.0, 4, 2.0)],
            suspensions: 1,
            reshapes: 0,
            restarts: 0,
        }
    }

    #[test]
    fn record_derived_times() {
        let r = record();
        assert_eq!(r.wait().as_hours(), 1.0);
        assert_eq!(r.span().as_hours(), 3.0);
        assert_eq!(r.turnaround().as_hours(), 4.0);
        assert_eq!(r.compute_time().as_hours(), 2.0);
    }

    #[test]
    fn bounded_slowdown_math() {
        let r = record();
        // wait 3600 s, runtime 7200 s → (3600+7200)/7200 = 1.5.
        assert!((r.bounded_slowdown() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn energy_and_node_seconds() {
        let r = record();
        assert!((r.energy().kwh() - 4.0).abs() < 1e-9);
        assert!((r.node_seconds() - 8.0 * 3600.0).abs() < 1e-6);
    }

    #[test]
    fn carbon_uses_segment_windows() {
        let r = record();
        // CI: 100 g for hours 0-2, 300 g for hours 2+.
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(
                SimTime::ZERO,
                SimDuration::from_hours(2.0),
                vec![100.0, 300.0],
            ),
        );
        // Segment 1 (1-2h): 2 kWh × 100 g; segment 2 (3-4h): 2 kWh × 300 g.
        let c = r.carbon(&trace);
        assert!((c.grams() - 800.0).abs() < 1e-6);
    }

    #[test]
    fn outcome_aggregates() {
        let out = SimOutcome::from_records(
            vec![record()],
            2,
            8,
            None,
            Energy::from_kwh(1.0),
            Carbon::from_grams(50.0),
            0.0,
        );
        assert_eq!(out.unfinished, 2);
        assert_eq!(out.makespan, SimTime::from_hours(4.0));
        // 8 node-hours of work over 8 nodes × 4 h = 25 %.
        assert!((out.utilization - 0.25).abs() < 1e-9);
        assert_eq!(out.carbon.grams(), 50.0);
        assert_eq!(out.wait.count, 1);
    }

    #[test]
    fn power_profile_reconstructs_segments() {
        let recs = vec![record()];
        // record(): 2 kW over 1-2h and 3-4h on 4 nodes.
        let profile = power_profile(
            &recs,
            SimDuration::from_hours(1.0),
            SimTime::from_hours(5.0),
        );
        assert_eq!(profile.len(), 5);
        let v = profile.values();
        assert!((v[0] - 0.0).abs() < 1e-9);
        assert!((v[1] - 2000.0).abs() < 1e-9);
        assert!((v[2] - 0.0).abs() < 1e-9);
        assert!((v[3] - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn power_profile_splits_partial_buckets() {
        let rec = JobRecord {
            segments: vec![seg(0.5, 1.5, 2, 1.0)],
            ..record()
        };
        let profile = power_profile(
            &[rec],
            SimDuration::from_hours(1.0),
            SimTime::from_hours(2.0),
        );
        let v = profile.values();
        // Half the energy in each of the two buckets.
        assert!((v[0] - 500.0).abs() < 1e-9);
        assert!((v[1] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn power_profile_tolerates_short_horizon() {
        // Horizon shorter than the records: the tail lands in the last
        // bucket instead of panicking.
        let rec = JobRecord {
            segments: vec![seg(0.0, 4.0, 2, 1.0)],
            ..record()
        };
        let profile = power_profile(
            &[rec],
            SimDuration::from_hours(1.0),
            SimTime::from_hours(2.0),
        );
        assert_eq!(profile.len(), 2);
        // 4 kWh total: 1 kWh in bucket 0, 3 kWh in the clamped last bucket.
        assert!((profile.values()[0] - 1000.0).abs() < 1e-9);
        assert!((profile.values()[1] - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_profile_normalizes_by_cluster() {
        let recs = vec![record()];
        let profile = utilization_profile(
            &recs,
            SimDuration::from_hours(1.0),
            SimTime::from_hours(4.0),
            8,
        );
        let v = profile.values();
        assert!((v[1] - 0.5).abs() < 1e-9); // 4 of 8 nodes
        assert!((v[2] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn hot_path_stats_tolerate_missing_counters() {
        // A counter block serialized before the speculative-planning
        // counters existed must still load, with absent fields at 0.
        let old = r#"{
            "events": 10, "schedule_passes": 3, "schedule_skips": 1,
            "resorts_taken": 2, "resorts_skipped": 4,
            "trace_bucket_hits": 5, "trace_bucket_misses": 6,
            "scratch_grows": 7
        }"#;
        let v = serde_json::from_str(old).unwrap();
        let s = HotPathStats::from_value(&v).unwrap();
        assert_eq!(s.events, 10);
        assert_eq!(s.scratch_grows, 7);
        assert_eq!(s.spec_planned, 0);
        assert_eq!(s.spec_hits, 0);
        assert_eq!(s.spec_invalidations, 0);
        assert_eq!(s.fs_repositions, 0);
        assert_eq!(s.fs_renorms, 0);
    }

    #[test]
    fn hot_path_stats_tolerate_pre_fair_share_counters() {
        // A block from the speculative-planning era (has spec_* but
        // predates the fs_* counters) still loads, fs_* defaulting to 0.
        let old = r#"{
            "events": 10, "schedule_passes": 3, "schedule_skips": 1,
            "resorts_taken": 2, "resorts_skipped": 4,
            "trace_bucket_hits": 5, "trace_bucket_misses": 6,
            "scratch_grows": 7, "spec_planned": 8, "spec_hits": 6,
            "spec_invalidations": 2
        }"#;
        let v = serde_json::from_str(old).unwrap();
        let s = HotPathStats::from_value(&v).unwrap();
        assert_eq!(s.spec_planned, 8);
        assert_eq!(s.fs_repositions, 0);
        assert_eq!(s.fs_renorms, 0);
    }

    #[test]
    fn fs_counters_serialize_last() {
        // Append-only contract: new counters go at the end of the
        // struct so the serialized field order keeps old prefixes
        // stable for any order-sensitive consumer.
        let json = serde_json::to_string(&HotPathStats::default()).unwrap();
        let pos = |name: &str| json.find(name).unwrap();
        assert!(pos("spec_invalidations") < pos("fs_repositions"));
        assert!(pos("fs_repositions") < pos("fs_renorms"));
        assert_eq!(pos("fs_renorms"), json.rfind("fs_").unwrap());
    }

    #[test]
    fn hot_path_stats_roundtrip() {
        let s = HotPathStats {
            events: 1,
            spec_planned: 8,
            spec_hits: 6,
            spec_invalidations: 2,
            fs_repositions: 9,
            fs_renorms: 1,
            ..Default::default()
        };
        let v = s.to_value();
        assert_eq!(HotPathStats::from_value(&v).unwrap(), s);
    }

    #[test]
    fn empty_outcome_is_safe() {
        let out = SimOutcome::from_records(vec![], 0, 8, None, Energy::ZERO, Carbon::ZERO, 0.0);
        assert_eq!(out.makespan, SimTime::ZERO);
        assert_eq!(out.utilization, 0.0);
        assert_eq!(out.effective_job_ci, 0.0);
    }
}
