//! Malleable-job reconfiguration decisions (§3.2).
//!
//! The paper: *"the system manager and job manager in the PowerStack
//! combined with a malleability supporting software stack should
//! collaboratively and dynamically orchestrate (1) job power budget,
//! (2) node allocation, and (3) power budget distributions ... during
//! runtime."* In the MPI-Sessions/PMIx-style protocols the paper cites
//! (\[27\], \[34\]), the *system* offers resources and the *job* accepts or
//! declines based on whether reconfiguring pays off.
//!
//! This module contains the decision logic: a grow offer is worth taking
//! only if the speedup on the remaining work amortizes the
//! reconfiguration cost; shrink demands are mandatory (system authority
//! under a power budget) but sized here. The simulator consults these
//! functions at every tick.

use serde::{Deserialize, Serialize};
use sustain_sim_core::time::SimDuration;
use sustain_workload::speedup::SpeedupModel;

/// Outcome of evaluating a reconfiguration offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OfferDecision {
    /// The job accepts the new allocation.
    Accept,
    /// The job declines: reconfiguring does not pay off.
    Decline,
}

/// Evaluates a *grow* offer: accept iff the remaining work finishes
/// earlier after paying the reconfiguration cost.
///
/// `remaining_work` is in the job's work units (`runtime = work /
/// speedup(alloc)`); `useful_cap` bounds exploitable parallelism
/// (requested/efficient nodes).
pub fn evaluate_grow(
    speedup: SpeedupModel,
    current: u32,
    proposed: u32,
    useful_cap: u32,
    remaining_work: f64,
    reconfig_cost: SimDuration,
) -> OfferDecision {
    assert!(proposed > current, "not a grow offer");
    let cur_useful = current.min(useful_cap).max(1);
    let new_useful = proposed.min(useful_cap).max(1);
    let t_now = remaining_work / speedup.speedup(cur_useful);
    let t_after = reconfig_cost.as_secs() + remaining_work / speedup.speedup(new_useful);
    if t_after < t_now {
        OfferDecision::Accept
    } else {
        OfferDecision::Decline
    }
}

/// Sizes a *shrink* demand: how many nodes the job must release. Shrinks
/// are mandatory (the alternative under a power emergency is suspension),
/// but never below the job's minimum allocation.
pub fn size_shrink(current: u32, min_alloc: u32, nodes_needed_back: u32) -> u32 {
    let releasable = current.saturating_sub(min_alloc);
    current - releasable.min(nodes_needed_back)
}

/// A grow candidate considered by the system manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowCandidate {
    /// Index of the running job in the scheduler's table.
    pub running_pos: usize,
    /// Current allocation.
    pub current: u32,
    /// Largest useful allocation (class max ∩ exploitable parallelism).
    pub max_useful: u32,
    /// Marginal speedup per node at the current allocation (the system
    /// manager's ranking key).
    pub marginal_gain: f64,
}

/// Ranks grow candidates by marginal speedup per extra node, descending —
/// the system manager hands spare nodes to whoever benefits most. Ties
/// break by position for determinism.
pub fn rank_grow_candidates(
    jobs: &[(usize, SpeedupModel, u32, u32)], // (pos, model, current, max_useful)
) -> Vec<GrowCandidate> {
    let mut candidates: Vec<GrowCandidate> = jobs
        .iter()
        .filter(|(_, _, current, max_useful)| current < max_useful)
        .map(|&(pos, model, current, max_useful)| {
            let gain = model.speedup((current + 1).min(max_useful)) - model.speedup(current.max(1));
            GrowCandidate {
                running_pos: pos,
                current,
                max_useful,
                marginal_gain: gain,
            }
        })
        .collect();
    candidates.sort_by(|a, b| {
        b.marginal_gain
            .total_cmp(&a.marginal_gain)
            .then(a.running_pos.cmp(&b.running_pos))
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_accepted_when_work_remains() {
        // 10 000 work units on 4 nodes (linear): 2500 s left. Growing to 8
        // costs 60 s, finishes in 1250 s → accept.
        let d = evaluate_grow(
            SpeedupModel::Linear,
            4,
            8,
            64,
            10_000.0,
            SimDuration::from_secs(60.0),
        );
        assert_eq!(d, OfferDecision::Accept);
    }

    #[test]
    fn grow_declined_near_completion() {
        // Only 100 work units left: 25 s on 4 nodes; reconfig costs 60 s.
        let d = evaluate_grow(
            SpeedupModel::Linear,
            4,
            8,
            64,
            100.0,
            SimDuration::from_secs(60.0),
        );
        assert_eq!(d, OfferDecision::Decline);
    }

    #[test]
    fn grow_declined_beyond_useful_parallelism() {
        // Job can only exploit 4 nodes; growing 4 → 8 buys nothing.
        let d = evaluate_grow(
            SpeedupModel::Linear,
            4,
            8,
            4,
            1e6,
            SimDuration::from_secs(1.0),
        );
        assert_eq!(d, OfferDecision::Decline);
    }

    #[test]
    fn amdahl_saturated_job_declines() {
        // Heavy serial fraction: speedup(32)≈speedup(64); not worth 300 s.
        let m = SpeedupModel::Amdahl {
            serial_fraction: 0.25,
        };
        // speedup(32)=3.66, speedup(64)=3.82: doubling nodes saves only
        // ~117 s on 10 000 work units — not worth a 300 s reconfiguration.
        let d = evaluate_grow(m, 32, 64, 64, 10_000.0, SimDuration::from_secs(300.0));
        assert_eq!(d, OfferDecision::Decline);
    }

    #[test]
    fn shrink_respects_minimum() {
        assert_eq!(size_shrink(16, 4, 8), 8);
        assert_eq!(size_shrink(16, 4, 100), 4); // clamped at min
        assert_eq!(size_shrink(4, 4, 2), 4); // nothing releasable
        assert_eq!(size_shrink(10, 1, 0), 10); // nothing demanded
    }

    #[test]
    fn ranking_prefers_steeper_speedup() {
        let linear = SpeedupModel::Linear;
        let saturated = SpeedupModel::Amdahl {
            serial_fraction: 0.5,
        };
        let ranked = rank_grow_candidates(&[(0, saturated, 8, 64), (1, linear, 8, 64)]);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].running_pos, 1, "linear job should rank first");
        assert!(ranked[0].marginal_gain > ranked[1].marginal_gain);
    }

    #[test]
    fn ranking_skips_maxed_out_jobs() {
        let ranked = rank_grow_candidates(&[(0, SpeedupModel::Linear, 8, 8)]);
        assert!(ranked.is_empty());
    }

    #[test]
    fn ranking_ties_break_by_position() {
        let m = SpeedupModel::Linear;
        let ranked = rank_grow_candidates(&[(3, m, 4, 8), (1, m, 4, 8)]);
        assert_eq!(ranked[0].running_pos, 1);
        assert_eq!(ranked[1].running_pos, 3);
    }
}
