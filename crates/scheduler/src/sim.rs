//! The event-driven RJMS simulator.
//!
//! One simulator covers all the §3 experiments: it schedules a job trace
//! onto a cluster under a (possibly time-varying, carbon-derived) power
//! budget, with pluggable queueing policies (FCFS, EASY backfilling,
//! carbon-aware backfilling), carbon-aware checkpoint/suspend (§3.3), and
//! malleable reshaping (§3.2).
//!
//! Semantics and simplifications (documented here, asserted in tests):
//!
//! * Nodes are homogeneous; a job's power is `power_per_node × alloc`.
//! * Reservation (EASY "shadow time") uses exact remaining runtimes of
//!   running jobs; *backfill candidates* are gated by their user walltime
//!   estimates, as in production EASY.
//! * Suspending a checkpointable job costs `checkpoint_overhead` of extra
//!   work; resuming costs `restart_overhead` (both stretch the remaining
//!   runtime, modelling write-out and restore).
//! * Power budgets bind at scheduling decisions and at hourly ticks; if
//!   shedding (shrink + suspend) cannot get under a newly lowered budget,
//!   the overshoot is recorded as violation time rather than killing jobs.

use crate::cluster::{Allocation, Cluster};
use crate::metrics::{HotPathStats, JobRecord, Segment, SimOutcome};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use sustain_grid::trace::CarbonTrace;
use sustain_sim_core::ctl::RunCtl;
use sustain_sim_core::error::{
    ensure_ordered, ensure_positive, env_knob_usize, ConfigError, SimError, Validate,
};
use sustain_sim_core::event::{EventId, EventQueue};
use sustain_sim_core::hash::{CanonicalHash, CanonicalHasher};
use sustain_sim_core::series::TimeSeries;
use sustain_sim_core::time::{SimDuration, SimTime};
use sustain_sim_core::units::{Carbon, Energy, Power};
use sustain_workload::job::{Job, JobId};

/// Queueing/backfilling policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// First-come-first-served; the head of the queue blocks.
    Fcfs,
    /// EASY backfilling: jobs may jump the queue if they do not delay the
    /// reservation of the head job.
    EasyBackfill,
    /// Conservative backfilling: every queued job holds a reservation; a
    /// job may only start early if it delays no earlier reservation.
    ConservativeBackfill,
    /// EASY backfilling plus carbon-aware start gating (§3.3): delayable
    /// jobs only start in green periods, bounded by a maximum delay.
    CarbonAware(CarbonAwareCfg),
}

impl Validate for Policy {
    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            Policy::CarbonAware(cfg) => cfg.validate().map_err(|e| e.nested("Policy")),
            _ => Ok(()),
        }
    }
}

/// Configuration of the carbon-aware start gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonAwareCfg {
    /// A start is "green" when CI < this fraction of the trace mean.
    pub green_threshold_fraction: f64,
    /// Jobs with walltime estimates at or below this start regardless of
    /// the grid (delaying short jobs saves little carbon and hurts users).
    pub short_job_cutoff: SimDuration,
    /// After waiting this long a job becomes eligible unconditionally
    /// (bounds the worst-case wait).
    pub max_delay: SimDuration,
}

impl Default for CarbonAwareCfg {
    fn default() -> Self {
        CarbonAwareCfg {
            green_threshold_fraction: 0.95,
            short_job_cutoff: SimDuration::from_hours(2.0),
            max_delay: SimDuration::from_hours(24.0),
        }
    }
}

impl Validate for CarbonAwareCfg {
    fn validate(&self) -> Result<(), ConfigError> {
        ensure_positive(
            "CarbonAwareCfg",
            "green_threshold_fraction",
            self.green_threshold_fraction,
        )
        // Durations (`short_job_cutoff`, `max_delay`) are non-negative
        // and finite by construction of `SimDuration`.
    }
}

/// Node-failure injection model: failures strike nodes at a per-node
/// MTBF; a failed busy node kills its job (checkpointable jobs roll back
/// to their last segment boundary, which acts as the checkpoint; others
/// restart from scratch), and the node returns after the repair time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-node mean time between failures.
    pub node_mtbf: SimDuration,
    /// Node repair time.
    pub mttr: SimDuration,
    /// RNG seed for the failure process.
    pub seed: u64,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            node_mtbf: SimDuration::from_days(365.0),
            mttr: SimDuration::from_hours(8.0),
            seed: 0xFA11,
        }
    }
}

impl Validate for FailureModel {
    fn validate(&self) -> Result<(), ConfigError> {
        // MTBF is a rate denominator: zero would mean "every node fails
        // continuously" and divides by zero in the arrival sampling.
        ensure_positive("FailureModel", "node_mtbf", self.node_mtbf.as_secs())
    }
}

/// Fair-share configuration: users' recent (exponentially decayed) usage
/// demotes their pending jobs within the same queue priority — the
/// standard RJMS fairness mechanism, and the §3.4 hook for usage-based
/// incentives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairShareCfg {
    /// Half-life of the usage decay.
    pub half_life: SimDuration,
}

impl Default for FairShareCfg {
    fn default() -> Self {
        FairShareCfg {
            half_life: SimDuration::from_days(7.0),
        }
    }
}

impl Validate for FairShareCfg {
    fn validate(&self) -> Result<(), ConfigError> {
        ensure_positive("FairShareCfg", "half_life", self.half_life.as_secs())
    }
}

/// Carbon-aware checkpoint/suspend configuration (§3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCfg {
    /// Suspend checkpointable jobs when CI > this fraction of the mean.
    pub suspend_threshold_fraction: f64,
    /// Allow resumes when CI < this fraction of the mean (must be ≤ the
    /// suspend threshold for hysteresis).
    pub resume_threshold_fraction: f64,
    /// Extra work (wall time at current allocation) to write a checkpoint.
    pub checkpoint_overhead: SimDuration,
    /// Extra work to restore from a checkpoint.
    pub restart_overhead: SimDuration,
    /// Jobs with less remaining runtime than this are never suspended.
    pub min_remaining: SimDuration,
    /// Periodic checkpoint cadence while running: on a node failure a
    /// checkpointable job loses only the work since its last whole
    /// interval.
    pub interval: SimDuration,
}

impl Default for CheckpointCfg {
    fn default() -> Self {
        CheckpointCfg {
            suspend_threshold_fraction: 1.15,
            resume_threshold_fraction: 1.0,
            checkpoint_overhead: SimDuration::from_mins(5.0),
            restart_overhead: SimDuration::from_mins(3.0),
            min_remaining: SimDuration::from_hours(1.0),
            interval: SimDuration::from_hours(1.0),
        }
    }
}

impl Validate for CheckpointCfg {
    fn validate(&self) -> Result<(), ConfigError> {
        // `+∞` is a legal suspend threshold ("never CI-suspend", used by
        // the E8 failure experiments), so only NaN and negatives are
        // rejected here; `ensure_ordered` enforces the hysteresis.
        for (field, v) in [
            (
                "suspend_threshold_fraction",
                self.suspend_threshold_fraction,
            ),
            ("resume_threshold_fraction", self.resume_threshold_fraction),
        ] {
            if v.is_nan() || v < 0.0 {
                return Err(ConfigError::new(
                    "CheckpointCfg",
                    field,
                    format!("must be >= 0 (NaN rejected), got {v}"),
                ));
            }
        }
        ensure_ordered(
            "CheckpointCfg",
            "resume_threshold_fraction",
            self.resume_threshold_fraction,
            "suspend_threshold_fraction",
            self.suspend_threshold_fraction,
        )?;
        // The periodic-checkpoint cadence divides remaining work.
        ensure_positive("CheckpointCfg", "interval", self.interval.as_secs())
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cluster.
    pub cluster: Cluster,
    /// Queueing policy.
    pub policy: Policy,
    /// Multi-queue admission/priority configuration (§3.4). Jobs that no
    /// queue admits are rejected; admitted jobs inherit their queue's
    /// priority for pending-order. `None` = single FIFO queue.
    pub queues: Option<crate::queue::QueueSet>,
    /// Grid carbon-intensity trace (enables carbon accounting and the
    /// carbon-aware policies).
    pub carbon_trace: Option<CarbonTrace>,
    /// Time-varying total power budget in watts (e.g. produced by a
    /// `ScalingPolicy`); `None` = unlimited.
    pub power_budget: Option<TimeSeries>,
    /// Carbon-aware checkpointing (requires a carbon trace).
    pub checkpoint: Option<CheckpointCfg>,
    /// Fair-share usage-based ordering within queue priorities.
    pub fair_share: Option<FairShareCfg>,
    /// Node-failure injection (None = reliable hardware).
    pub failures: Option<FailureModel>,
    /// Enable malleable reshaping at ticks (§3.2).
    pub enable_malleability: bool,
    /// Wall-time cost a job pays on every reshape (data redistribution,
    /// MPI session reconfiguration). Grow offers are declined when the
    /// remaining work cannot amortize this cost (see [`crate::malleable`]).
    pub reshape_cost: SimDuration,
    /// Tick interval for budget/checkpoint re-evaluation.
    pub tick: SimDuration,
    /// Safety cap on dispatched events.
    pub max_steps: u64,
}

impl SimConfig {
    /// A plain EASY-backfilling setup with no carbon coupling.
    pub fn easy(cluster: Cluster) -> SimConfig {
        SimConfig {
            cluster,
            policy: Policy::EasyBackfill,
            queues: None,
            carbon_trace: None,
            power_budget: None,
            checkpoint: None,
            fair_share: None,
            failures: None,
            enable_malleability: false,
            reshape_cost: SimDuration::from_secs(30.0),
            tick: SimDuration::from_hours(1.0),
            max_steps: 10_000_000,
        }
    }
}

impl Validate for SimConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.cluster.nodes == 0 {
            return Err(ConfigError::new(
                "SimConfig",
                "cluster.nodes",
                "cluster needs at least one node",
            ));
        }
        self.policy.validate().map_err(|e| e.nested("SimConfig"))?;
        self.queues.validate().map_err(|e| e.nested("SimConfig"))?;
        self.checkpoint
            .validate()
            .map_err(|e| e.nested("SimConfig"))?;
        self.fair_share
            .validate()
            .map_err(|e| e.nested("SimConfig"))?;
        self.failures
            .validate()
            .map_err(|e| e.nested("SimConfig"))?;
        if let Some(trace) = &self.carbon_trace {
            if trace.series().values().is_empty() {
                return Err(ConfigError::new(
                    "SimConfig",
                    "carbon_trace",
                    "trace must contain at least one sample",
                ));
            }
            if let Some(bad) = trace.series().values().iter().find(|v| !v.is_finite()) {
                return Err(ConfigError::new(
                    "SimConfig",
                    "carbon_trace",
                    format!("trace contains a non-finite sample ({bad})"),
                ));
            }
        }
        if let Some(budget) = &self.power_budget {
            if let Some(bad) = budget.values().iter().find(|v| !v.is_finite() || **v < 0.0) {
                return Err(ConfigError::new(
                    "SimConfig",
                    "power_budget",
                    format!("budget samples must be finite and >= 0, got {bad}"),
                ));
            }
        }
        // A zero tick would re-fire the periodic event at the same
        // instant until `max_steps` trips.
        ensure_positive("SimConfig", "tick", self.tick.as_secs())?;
        if self.max_steps == 0 {
            return Err(ConfigError::new("SimConfig", "max_steps", "must be >= 1"));
        }
        Ok(())
    }
}

impl CanonicalHash for Policy {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        match self {
            Policy::Fcfs => hasher.write_tag(0),
            Policy::EasyBackfill => hasher.write_tag(1),
            Policy::ConservativeBackfill => hasher.write_tag(2),
            Policy::CarbonAware(cfg) => {
                hasher.write_tag(3);
                cfg.canonical_hash_into(hasher);
            }
        }
    }
}

impl CanonicalHash for CarbonAwareCfg {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_f64(self.green_threshold_fraction);
        self.short_job_cutoff.canonical_hash_into(hasher);
        self.max_delay.canonical_hash_into(hasher);
    }
}

impl CanonicalHash for FailureModel {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        self.node_mtbf.canonical_hash_into(hasher);
        self.mttr.canonical_hash_into(hasher);
        hasher.write_u64(self.seed);
    }
}

impl CanonicalHash for FairShareCfg {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        self.half_life.canonical_hash_into(hasher);
    }
}

impl CanonicalHash for CheckpointCfg {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_f64(self.suspend_threshold_fraction);
        hasher.write_f64(self.resume_threshold_fraction);
        self.checkpoint_overhead.canonical_hash_into(hasher);
        self.restart_overhead.canonical_hash_into(hasher);
        self.min_remaining.canonical_hash_into(hasher);
        self.interval.canonical_hash_into(hasher);
    }
}

impl CanonicalHash for SimConfig {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        self.cluster.canonical_hash_into(hasher);
        self.policy.canonical_hash_into(hasher);
        self.queues.canonical_hash_into(hasher);
        self.carbon_trace.canonical_hash_into(hasher);
        self.power_budget.canonical_hash_into(hasher);
        self.checkpoint.canonical_hash_into(hasher);
        self.fair_share.canonical_hash_into(hasher);
        self.failures.canonical_hash_into(hasher);
        hasher.write_bool(self.enable_malleability);
        self.reshape_cost.canonical_hash_into(hasher);
        self.tick.canonical_hash_into(hasher);
        hasher.write_u64(self.max_steps);
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Submit(usize),
    Finish(JobId),
    Tick,
    NodeRepaired,
}

struct RunJob {
    idx: usize,
    alloc: u32,
    rate: f64,
    work_remaining: f64,
    last_update: SimTime,
    seg_start: SimTime,
    /// Work remaining at the segment start — the rollback point when a
    /// failure strikes a checkpointable job.
    seg_start_work: f64,
    finish_ev: EventId,
}

struct Book {
    start: Option<SimTime>,
    end: Option<SimTime>,
    segments: Vec<Segment>,
    suspensions: u32,
    reshapes: u32,
    restarts: u32,
    rejected: bool,
}

/// Reusable planning buffers owned by the sim (the DESIGN.md §6
/// scratch-buffer audit): the schedule, backfill, conservative-planning
/// and resort passes borrow these instead of allocating per pass, so
/// once they have warmed up to the high-water mark the steady-state
/// tick/schedule path performs no heap allocation. `scratch_grows` in
/// [`HotPathStats`] counts the warm-up growths and is expected to
/// plateau.
#[derive(Default)]
struct Scratch {
    /// Time-sorted (time, ±nodes) availability/reservation profile for
    /// conservative planning.
    events: Vec<(SimTime, i64)>,
    /// Pending-queue snapshot for one conservative pass.
    plan: Vec<usize>,
    /// Time-sorted (time, freed nodes) profile for the EASY shadow.
    frees: Vec<(SimTime, u32)>,
    /// Keyed pending entries for a fair-share resort.
    keyed: Vec<(std::cmp::Reverse<u32>, f64, SimTime, JobId, usize)>,
    /// Per-user decayed-usage memo for one resort.
    usage_memo: std::collections::HashMap<u32, f64>,
    /// Speculative earliest-slot results for one conservative planning
    /// round, aligned index-for-index with `plan`. Filled in parallel
    /// against the round's immutable profile snapshot, then consumed by
    /// the ordered commit loop.
    spec: Vec<SimTime>,
}

/// The single pending-order key (see [`Sim::pending_key`]).
type PendKey = (std::cmp::Reverse<u32>, f64, SimTime, JobId);

/// Total order on pending keys: queue priority (desc, via `Reverse`),
/// decayed usage (asc), submit time, then id. Ids are unique, so the
/// order is total and stable/unstable sorts agree.
fn pend_key_cmp(a: &PendKey, b: &PendKey) -> std::cmp::Ordering {
    a.0.cmp(&b.0)
        .then_with(|| a.1.total_cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
        .then_with(|| a.3.cmp(&b.3))
}

/// Inserts into a time-sorted profile at the upper bound of its time
/// key. Sequential upper-bound inserts reproduce exactly the order that
/// "append everything, then stable-sort by time" used to produce, while
/// staying allocation-free (within capacity).
fn sorted_insert<T>(v: &mut Vec<(SimTime, T)>, item: (SimTime, T)) {
    let pos = v.partition_point(|e| e.0 <= item.0);
    v.insert(pos, item);
}

/// Default pending-queue length below which a conservative planning
/// round skips the speculative parallel phase: snapshot fan-out has a
/// fixed cost (scoped worker threads per round), so sub-second scenarios
/// with short queues should not pay it.
const PAR_PENDING_MIN_DEFAULT: usize = 64;

static PAR_PENDING_MIN: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(PAR_PENDING_MIN_DEFAULT);
static PAR_PENDING_MIN_INIT: std::sync::Once = std::sync::Once::new();

/// Environment variable overriding the speculative-planning threshold
/// (see [`par_pending_min`]).
pub const PAR_PENDING_MIN_ENV: &str = "SUSTAIN_PAR_PENDING_MIN";

/// Strictly applies [`PAR_PENDING_MIN_ENV`] if set; returns the applied
/// threshold. Boundary code (CLI/service startup) calls this once so a
/// malformed value becomes a typed error instead of a silently-used
/// default; an explicit [`set_par_pending_min`] afterwards still wins.
pub fn init_par_pending_min_from_env() -> Result<Option<usize>, ConfigError> {
    let parsed = env_knob_usize(PAR_PENDING_MIN_ENV)?;
    if let Some(v) = parsed {
        set_par_pending_min(v);
    } else {
        // Mark resolution done so the lazy path cannot re-read (and
        // re-warn about) the environment later in the process lifetime.
        PAR_PENDING_MIN_INIT.call_once(|| {});
    }
    Ok(parsed)
}

/// Minimum pending-queue length for the speculative parallel planning
/// phase. Resolved once from [`PAR_PENDING_MIN_ENV`] (falling back to
/// 64) unless [`set_par_pending_min`] or
/// [`init_par_pending_min_from_env`] ran first. The knob only trades
/// setup cost against parallelism — outcomes are byte-identical at
/// every value and every thread count.
///
/// This lazy path is reached from deep inside the simulator, so a
/// malformed value cannot surface as a `Result`; it warns loudly on
/// stderr (once) and keeps the default rather than silently ignoring
/// the knob. Boundary code gets the typed-error behavior by calling
/// [`init_par_pending_min_from_env`] at startup.
pub fn par_pending_min() -> usize {
    PAR_PENDING_MIN_INIT.call_once(|| match env_knob_usize(PAR_PENDING_MIN_ENV) {
        Ok(Some(v)) => PAR_PENDING_MIN.store(v, std::sync::atomic::Ordering::Relaxed),
        Ok(None) => {}
        Err(e) => eprintln!(
            "warning: {e}; keeping the default speculative-planning \
             threshold of {PAR_PENDING_MIN_DEFAULT}"
        ),
    });
    PAR_PENDING_MIN.load(std::sync::atomic::Ordering::Relaxed)
}

/// Overrides the speculative-planning queue-length threshold for the
/// whole process (0 = always speculate when workers are available,
/// `usize::MAX` = never). Takes precedence over the environment.
pub fn set_par_pending_min(n: usize) {
    PAR_PENDING_MIN_INIT.call_once(|| {});
    PAR_PENDING_MIN.store(n, std::sync::atomic::Ordering::Relaxed);
}

/// Exact feasibility check of the window `[start, start + dur)` against
/// a time-sorted strictly-future profile: the same prefix fold and
/// window scan [`earliest_slot_sorted`] performs for one candidate,
/// factored out so the commit loop can re-verify a speculative slot
/// against the *live* profile.
///
/// Why verification is enough for byte-identity (DESIGN.md §6): within
/// one planning round, commits only ever *shrink* availability — each
/// reservation subtracts nodes from `free_now` or inserts a
/// `(start, -alloc)` event whose matching `(end, +alloc)` restores what
/// it took, never more — so the live profile is pointwise ≤ the round's
/// snapshot. A speculative slot that is still feasible live therefore
/// has no earlier feasible start (an earlier live window would have been
/// an earlier snapshot window, contradicting "earliest on snapshot"),
/// i.e. it *is* the serial planner's answer. Infeasible slots are
/// recomputed serially, which is exactly what the serial planner does.
fn window_feasible(
    free_now: i64,
    evs: &[(SimTime, i64)],
    start: SimTime,
    alloc: i64,
    dur: SimDuration,
) -> bool {
    let mut free = free_now;
    let mut consumed = 0usize;
    while consumed < evs.len() && evs[consumed].0 <= start {
        free += evs[consumed].1;
        consumed += 1;
    }
    if free < alloc {
        return false;
    }
    let t_end = start + dur;
    for e in &evs[consumed..] {
        if e.0 >= t_end {
            break;
        }
        free += e.1;
        if free < alloc {
            return false;
        }
    }
    true
}

struct Sim<'a> {
    jobs: &'a [Job],
    cfg: &'a SimConfig,
    queue: EventQueue<Ev>,
    alloc: Allocation,
    pending: Vec<usize>,
    priorities: Vec<u32>,
    // Per-user decayed usage in node-seconds: (value, last decay time).
    usage: std::collections::HashMap<u32, (f64, SimTime)>,
    running: Vec<RunJob>,
    suspended: Vec<(usize, f64)>, // (job idx, work_remaining)
    books: Vec<Book>,
    running_power: Power,
    submitted: usize,
    completed: usize,
    rejected: usize,
    trace_mean: f64,
    // Continuous accounting.
    last_account: SimTime,
    idle_energy: Energy,
    idle_carbon: Carbon,
    violation_seconds: f64,
    tick_scheduled: bool,
    failure_rng: Option<sustain_sim_core::rng::RngStream>,
    total_failures: u32,
    /// Largest budget the series ever offers (jobs that cannot fit even
    /// this are rejected at submit rather than pending forever).
    max_budget: Option<Power>,
    /// Set when recorded fair-share usage may have changed relative
    /// pending order; cleared by the next resort.
    pending_dirty: bool,
    /// Timestamp of the last fair-share resort. A resort is skipped
    /// only when clean *and* at the same timestamp: between recordings
    /// the order is mathematically time-invariant (every user's usage
    /// decays by the same factor), but `powf` rounding can flip
    /// near-equal usages as `now` advances, and replay must recompute
    /// exactly where the reference implementation did.
    last_sorted_at: Option<SimTime>,
    /// Set by a resort that found every pending user's decayed usage to
    /// be exactly `0.0`. Zero is absorbing — decay only multiplies by a
    /// factor in `[0, 1]` — so from that moment the fair-share key is
    /// time-invariant and the pending order frozen, which is what lets
    /// [`Sim::can_skip_schedule`] skip under fair share. Cleared by
    /// usage recordings and by inserts carrying nonzero usage.
    usage_all_zero: bool,
    /// Set at the end of every completed scheduling pass (a pass runs to
    /// fixpoint: nothing more can start *now*); cleared by any mutation
    /// that could enable a start. While set, `try_schedule` is a no-op
    /// under the guards proven in [`Sim::can_skip_schedule`].
    quiescent: bool,
    /// Budget value observed when the last pass went quiescent.
    quiescent_budget: Option<Power>,
    /// `resume_allowed` observed when the last pass went quiescent.
    quiescent_resume_ok: bool,
    /// Cached current carbon bucket: (valid_from, valid_to, g/kWh).
    ci_cache: Cell<Option<(SimTime, SimTime, f64)>>,
    /// Cached current budget bucket: (valid_from, valid_to, watts).
    budget_cache: Cell<Option<(SimTime, SimTime, f64)>>,
    /// CI/budget lookups served from the cached bucket (interior
    /// mutability: the lookups happen behind `&self`).
    trace_hits: Cell<u64>,
    /// CI/budget lookups that crossed a bucket boundary.
    trace_misses: Cell<u64>,
    /// Remaining hot-path counters for this run.
    stats: HotPathStats,
    /// Reusable planning buffers.
    scratch: Scratch,
}

impl<'a> Sim<'a> {
    fn new(jobs: &'a [Job], cfg: &'a SimConfig) -> Self {
        let trace_mean = cfg
            .carbon_trace
            .as_ref()
            .map(|t| t.series().stats().mean())
            .unwrap_or(0.0);
        Sim {
            jobs,
            cfg,
            queue: EventQueue::with_capacity(jobs.len() * 2 + 16),
            alloc: Allocation::new(cfg.cluster.nodes),
            pending: Vec::new(),
            priorities: vec![0; jobs.len()],
            usage: std::collections::HashMap::new(),
            running: Vec::new(),
            suspended: Vec::new(),
            books: jobs
                .iter()
                .map(|_| Book {
                    start: None,
                    end: None,
                    segments: Vec::new(),
                    suspensions: 0,
                    reshapes: 0,
                    restarts: 0,
                    rejected: false,
                })
                .collect(),
            running_power: Power::ZERO,
            submitted: 0,
            completed: 0,
            rejected: 0,
            trace_mean,
            last_account: SimTime::ZERO,
            idle_energy: Energy::ZERO,
            idle_carbon: Carbon::ZERO,
            violation_seconds: 0.0,
            tick_scheduled: false,
            failure_rng: cfg
                .failures
                .as_ref()
                .map(|f| sustain_sim_core::rng::RngStream::new(f.seed)),
            total_failures: 0,
            max_budget: cfg
                .power_budget
                .as_ref()
                .map(|b| Power::from_watts(b.values().iter().copied().fold(0.0, f64::max))),
            pending_dirty: false,
            last_sorted_at: None,
            usage_all_zero: false,
            quiescent: false,
            quiescent_budget: None,
            quiescent_resume_ok: true,
            ci_cache: Cell::new(None),
            budget_cache: Cell::new(None),
            trace_hits: Cell::new(0),
            trace_misses: Cell::new(0),
            stats: HotPathStats::default(),
            scratch: Scratch::default(),
        }
    }

    /// Decayed usage of a user at `now` (node-seconds, half-life decay).
    fn decayed_usage(&self, user: u32, now: SimTime) -> f64 {
        let Some(cfg) = &self.cfg.fair_share else {
            return 0.0;
        };
        match self.usage.get(&user) {
            Some(&(value, at)) => {
                let dt = now.saturating_since(at).as_secs();
                value * 0.5f64.powf(dt / cfg.half_life.as_secs())
            }
            None => 0.0,
        }
    }

    /// Records usage for a user at `now`. Marks the pending order dirty:
    /// this is the only operation that can change *relative* fair-share
    /// order (decay between recordings scales every user's usage by the
    /// same factor, preserving order).
    fn record_usage(&mut self, user: u32, node_seconds: f64, now: SimTime) {
        if self.cfg.fair_share.is_none() {
            return;
        }
        let decayed = self.decayed_usage(user, now);
        self.usage.insert(user, (decayed + node_seconds, now));
        self.pending_dirty = true;
        self.usage_all_zero = false;
        self.quiescent = false;
    }

    /// THE pending-order key — the one definition both the sorted insert
    /// and the fair-share resort use: queue priority (desc), decayed
    /// fair-share usage at `now` (asc; identically 0.0 when fair share
    /// is off), submit time, then id. The id makes the key unique, so
    /// sorted-insert and full-sort produce the same total order.
    fn pending_key(&self, i: usize, now: SimTime) -> PendKey {
        (
            std::cmp::Reverse(self.priorities[i]),
            self.decayed_usage(self.jobs[i].user, now),
            self.jobs[i].submit,
            self.jobs[i].id,
        )
    }

    /// Re-sorts the pending list by [`Sim::pending_key`]. Skipped only
    /// when provably identical to the last resort: same timestamp and no
    /// usage recorded since (same-timestamp inserts keep the list
    /// key-sorted, see [`Sim::pending_insert`]). Re-sorting whenever
    /// `now` advances is required for bit-faithful replay — see
    /// `last_sorted_at`. The sort itself is allocation-free (scratch
    /// buffers) and memoizes the per-user decay.
    fn resort_pending(&mut self, now: SimTime) {
        if self.cfg.fair_share.is_none() || self.pending.len() < 2 {
            return;
        }
        if !self.pending_dirty && self.last_sorted_at == Some(now) {
            self.stats.resorts_skipped += 1;
            return;
        }
        self.pending_dirty = false;
        self.last_sorted_at = Some(now);
        self.stats.resorts_taken += 1;
        let mut keyed = std::mem::take(&mut self.scratch.keyed);
        let mut memo = std::mem::take(&mut self.scratch.usage_memo);
        let caps = (keyed.capacity(), memo.capacity());
        keyed.clear();
        memo.clear();
        for &i in &self.pending {
            let user = self.jobs[i].user;
            let usage = *memo
                .entry(user)
                .or_insert_with(|| self.decayed_usage(user, now));
            keyed.push((
                std::cmp::Reverse(self.priorities[i]),
                usage,
                self.jobs[i].submit,
                self.jobs[i].id,
                i,
            ));
        }
        // Unique ids make the order total: unstable sort is exact and,
        // unlike the stable sort, allocation-free.
        keyed.sort_unstable_by(|a, b| pend_key_cmp(&(a.0, a.1, a.2, a.3), &(b.0, b.1, b.2, b.3)));
        self.usage_all_zero = memo.values().all(|&v| v == 0.0);
        self.pending.clear();
        self.pending.extend(keyed.iter().map(|k| k.4));
        if (keyed.capacity(), memo.capacity()) != caps {
            self.stats.scratch_grows += 1;
        }
        self.scratch.keyed = keyed;
        self.scratch.usage_memo = memo;
    }

    /// Sorted insert by [`Sim::pending_key`] — the same key the resort
    /// uses, so the list is in final order immediately (the old insert
    /// ignored usage and relied on a per-pass resort to fix it up).
    /// Decayed usage for probed entries is computed along the binary
    /// search path: O(log n) usage evaluations, allocation-free.
    fn pending_insert(&mut self, idx: usize, now: SimTime) {
        self.quiescent = false;
        let key = self.pending_key(idx, now);
        if key.1 != 0.0 {
            self.usage_all_zero = false;
        }
        let pos = self.pending.partition_point(|&p| {
            pend_key_cmp(&self.pending_key(p, now), &key) != std::cmp::Ordering::Greater
        });
        self.pending.insert(pos, idx);
    }

    /// Budget lookup hoisted to bucket granularity: the value is cached
    /// together with its validity window, so the (many) lookups inside
    /// one bucket — every tick, accounting step and start attempt — pay
    /// one comparison instead of a series index computation.
    fn budget_at(&self, t: SimTime) -> Option<Power> {
        let series = self.cfg.power_budget.as_ref()?;
        if let Some((from, to, w)) = self.budget_cache.get() {
            if t >= from && t < to {
                self.trace_hits.set(self.trace_hits.get() + 1);
                return Some(Power::from_watts(w));
            }
        }
        self.trace_misses.set(self.trace_misses.get() + 1);
        let w = series.at(t);
        self.budget_cache
            .set(Some((t, series.next_boundary_after(t), w)));
        Some(Power::from_watts(w))
    }

    /// Carbon-intensity lookup with the same bucket-granularity cache as
    /// [`Sim::budget_at`].
    fn ci_at(&self, t: SimTime) -> Option<f64> {
        let trace = self.cfg.carbon_trace.as_ref()?;
        if let Some((from, to, ci)) = self.ci_cache.get() {
            if t >= from && t < to {
                self.trace_hits.set(self.trace_hits.get() + 1);
                return Some(ci);
            }
        }
        self.trace_misses.set(self.trace_misses.get() + 1);
        let ci = trace.at(t).grams_per_kwh();
        self.ci_cache.set(Some((t, trace.bucket_end_after(t), ci)));
        Some(ci)
    }

    /// Accumulates idle energy/carbon and budget-violation time since the
    /// last accounting point. Must be called before any state change.
    fn account(&mut self, now: SimTime) {
        if now <= self.last_account {
            return;
        }
        let window = now - self.last_account;
        let idle_power = self.cfg.cluster.idle_node_power * self.alloc.free() as f64;
        let e = idle_power.for_duration(window);
        self.idle_energy += e;
        if let Some(trace) = &self.cfg.carbon_trace {
            self.idle_carbon += e.carbon_at(trace.mean_over(self.last_account, now));
        }
        if let Some(budget) = self.budget_at(self.last_account) {
            if self.running_power > budget * 1.000001 {
                self.violation_seconds += window.as_secs();
            }
        }
        self.last_account = now;
    }

    /// Chooses the allocation for a start attempt, or `None` if the job
    /// cannot start now.
    fn choose_alloc(&self, idx: usize, now: SimTime) -> Option<u32> {
        let job = &self.jobs[idx];
        let (min, max) = job.bounds();
        let desired = job.requested_nodes.clamp(min, max);
        let mut alloc = desired.min(self.alloc.free());
        if let Some(budget) = self.budget_at(now) {
            let headroom = budget - self.running_power;
            if headroom <= Power::ZERO {
                return None;
            }
            let power_fit = (headroom.watts() / job.power_per_node.watts().max(1e-9)) as u32;
            alloc = alloc.min(power_fit);
        }
        if alloc >= min && alloc > 0 {
            Some(alloc)
        } else {
            None
        }
    }

    fn start_job(&mut self, idx: usize, alloc: u32, work_remaining: f64, now: SimTime) {
        self.quiescent = false;
        let job = &self.jobs[idx];
        self.alloc.claim(alloc);
        self.running_power += job.power_at(alloc);
        let rate = job.speedup.speedup(alloc.min(job.efficient_nodes).max(1));
        let finish_at = now + SimDuration::from_secs(work_remaining / rate);
        let finish_ev = self.queue.schedule(finish_at, Ev::Finish(job.id));
        let book = &mut self.books[idx];
        if book.start.is_none() {
            book.start = Some(now);
        }
        self.running.push(RunJob {
            idx,
            alloc,
            rate,
            work_remaining,
            last_update: now,
            seg_start: now,
            seg_start_work: work_remaining,
            finish_ev,
        });
    }

    /// Updates a running job's remaining work to `now`.
    fn progress(run: &mut RunJob, now: SimTime) {
        let elapsed = (now - run.last_update).as_secs();
        run.work_remaining = (run.work_remaining - elapsed * run.rate).max(0.0);
        run.last_update = now;
    }

    fn close_segment(&mut self, pos: usize, now: SimTime) {
        let run = &self.running[pos];
        let job = &self.jobs[run.idx];
        if now > run.seg_start {
            self.books[run.idx].segments.push(Segment {
                start: run.seg_start,
                end: now,
                nodes: run.alloc,
                power: job.power_at(run.alloc),
            });
        }
    }

    fn finish_job(&mut self, id: JobId, now: SimTime) {
        let Some(pos) = self.running.iter().position(|r| self.jobs[r.idx].id == id) else {
            return; // stale event (job was suspended/reshaped; event cancelled)
        };
        self.quiescent = false;
        self.close_segment(pos, now);
        let run = self.running.remove(pos);
        let job = &self.jobs[run.idx];
        self.alloc.release(run.alloc);
        self.running_power -= job.power_at(run.alloc);
        self.books[run.idx].end = Some(now);
        self.completed += 1;
        let user = job.user;
        let node_seconds: f64 = self.books[run.idx]
            .segments
            .iter()
            .map(|s| s.node_seconds())
            .sum();
        self.record_usage(user, node_seconds, now);
    }

    /// Reshapes a running job to a new allocation (malleability, §3.2).
    fn reshape(&mut self, pos: usize, new_alloc: u32, now: SimTime) {
        self.quiescent = false;
        Self::progress(&mut self.running[pos], now);
        self.close_segment(pos, now);
        let run = &mut self.running[pos];
        let job = &self.jobs[run.idx];
        let old = run.alloc;
        if new_alloc > old {
            self.alloc.claim(new_alloc - old);
        } else {
            self.alloc.release(old - new_alloc);
        }
        self.running_power -= job.power_at(old);
        self.running_power += job.power_at(new_alloc);
        run.alloc = new_alloc;
        run.rate = job
            .speedup
            .speedup(new_alloc.min(job.efficient_nodes).max(1));
        run.seg_start = now;
        // The reshape itself costs wall time at the new rate.
        run.work_remaining += self.cfg.reshape_cost.as_secs() * run.rate;
        run.seg_start_work = run.work_remaining;
        self.queue.cancel(run.finish_ev);
        let finish_at = now + SimDuration::from_secs(run.work_remaining / run.rate);
        run.finish_ev = self.queue.schedule(finish_at, Ev::Finish(job.id));
        self.books[run.idx].reshapes += 1;
    }

    /// Suspends a running checkpointable job (§3.3): pays the checkpoint
    /// overhead, frees its nodes.
    fn suspend(&mut self, pos: usize, now: SimTime) {
        self.quiescent = false;
        Self::progress(&mut self.running[pos], now);
        self.close_segment(pos, now);
        let run = self.running.remove(pos);
        let job = &self.jobs[run.idx];
        self.alloc.release(run.alloc);
        self.running_power -= job.power_at(run.alloc);
        self.queue.cancel(run.finish_ev);
        let overhead = self
            .cfg
            .checkpoint
            .as_ref()
            .map(|c| c.checkpoint_overhead.as_secs())
            .unwrap_or(0.0);
        // The overhead stretches remaining work at the (former) rate.
        let work = run.work_remaining + overhead * run.rate;
        self.books[run.idx].suspensions += 1;
        self.suspended.push((run.idx, work));
    }

    /// Whether a pending job may start now under the carbon-aware gate.
    fn eligible(&self, idx: usize, now: SimTime) -> bool {
        let Policy::CarbonAware(cfg) = &self.cfg.policy else {
            return true;
        };
        let job = &self.jobs[idx];
        if job.walltime_estimate <= cfg.short_job_cutoff {
            return true;
        }
        if now.saturating_since(job.submit) >= cfg.max_delay {
            return true;
        }
        match self.ci_at(now) {
            Some(ci) => ci < cfg.green_threshold_fraction * self.trace_mean,
            None => true,
        }
    }

    /// Whether suspended jobs may resume now (checkpoint hysteresis).
    fn resume_allowed(&self, now: SimTime) -> bool {
        match (&self.cfg.checkpoint, self.ci_at(now)) {
            (Some(cfg), Some(ci)) => ci < cfg.resume_threshold_fraction * self.trace_mean,
            _ => true,
        }
    }

    /// The core scheduling entry point: skips the pass outright when it
    /// is provably a no-op (the dominant case in long post-workload
    /// tick tails), otherwise runs it and records the new quiescent
    /// state.
    fn try_schedule(&mut self, now: SimTime) {
        if self.can_skip_schedule(now) {
            self.stats.schedule_skips += 1;
            return;
        }
        self.stats.schedule_passes += 1;
        self.schedule_pass(now);
        // The pass ran to fixpoint: nothing more can start at `now`.
        // Any mutation (start, finish, suspend, reshape, failure,
        // repair, submit) clears the flag again.
        self.quiescent = true;
        self.quiescent_budget = self.budget_at(now);
        self.quiescent_resume_ok = self.resume_allowed(now);
    }

    /// Whether a scheduling pass at `now` is provably a no-op.
    ///
    /// Proof sketch: while `quiescent` holds, no mutation has occurred
    /// since the last pass ran to fixpoint — free nodes, running power,
    /// the pending list and its order, and every job's absolute finish
    /// projection are all unchanged. Every start in every policy is
    /// gated on `choose_alloc`, whose inputs are free nodes, running
    /// power and the budget value — so with an identical budget value
    /// the same `None`s fall out. EASY backfill additionally compares
    /// `now + walltime` against the absolute shadow time, which only
    /// flips feasible→infeasible as `now` advances. Resumes are gated
    /// on `resume_allowed` (tracked as a bool) and `choose_alloc`. The
    /// deferred fair-share resort is order-equivalent: the next real
    /// pass resorts before deciding anything.
    fn can_skip_schedule(&self, now: SimTime) -> bool {
        if !self.quiescent {
            return false;
        }
        // Time-dependent machinery: the carbon-aware gate compares
        // `now` against per-job delay deadlines and the CI trace, and
        // malleable growth is re-probed every tick. Never skip those.
        if matches!(self.cfg.policy, Policy::CarbonAware(_)) || self.cfg.enable_malleability {
            return false;
        }
        // Conservative replanning mixes absolute times (running-job
        // completions) with now-relative reservation chains, so merely
        // advancing `now` can reorder the profile. Only skip once
        // nothing is running — then the profile shifts uniformly.
        if matches!(self.cfg.policy, Policy::ConservativeBackfill) && !self.running.is_empty() {
            return false;
        }
        // Fair-share order can drift as `now` advances even with no
        // usage recorded: `powf` rounding flips near-equal decayed
        // usages, and each user's usage underflows to exactly 0.0 at a
        // user-specific time — either can change the head and hence the
        // decisions. Skip only once a resort has observed every pending
        // user's usage at exactly 0.0: zero is absorbing, so from then
        // on the key is time-invariant and the order frozen. (With
        // fewer than two pending jobs the order is vacuously frozen.)
        if self.cfg.fair_share.is_some() && self.pending.len() >= 2 && !self.usage_all_zero {
            return false;
        }
        // A budget change alters `choose_alloc`. Compare the value, not
        // the bucket index: flat stretches and the clamped tail past
        // the end of the series still skip.
        if self.cfg.power_budget.is_some() && self.budget_at(now) != self.quiescent_budget {
            return false;
        }
        // Checkpoint hysteresis: resume eligibility follows the CI
        // trace; skip only while the verdict is unchanged.
        if !self.suspended.is_empty() && self.resume_allowed(now) != self.quiescent_resume_ok {
            return false;
        }
        true
    }

    /// The core scheduling pass: resume suspended, start pending (with
    /// EASY backfilling where enabled).
    fn schedule_pass(&mut self, now: SimTime) {
        self.resort_pending(now);
        // 1. Resume suspended jobs (FIFO) if the grid allows it. Jobs
        // that resume are compacted out in place — same visit order and
        // intervening mutations as the old remove-and-continue loop,
        // without the O(n) removes.
        if !self.suspended.is_empty() && self.resume_allowed(now) {
            let mut write = 0;
            let mut read = 0;
            while read < self.suspended.len() {
                let (idx, work) = self.suspended[read];
                if let Some(alloc) = self.choose_alloc(idx, now) {
                    let restart = self
                        .cfg
                        .checkpoint
                        .as_ref()
                        .map(|c| c.restart_overhead.as_secs())
                        .unwrap_or(0.0);
                    let job = &self.jobs[idx];
                    let rate = job.speedup.speedup(alloc.min(job.efficient_nodes).max(1));
                    self.start_job(idx, alloc, work + restart * rate, now);
                } else {
                    self.suspended[write] = self.suspended[read];
                    write += 1;
                }
                read += 1;
            }
            self.suspended.truncate(write);
        }

        if matches!(self.cfg.policy, Policy::ConservativeBackfill) {
            self.conservative_schedule(now);
            return;
        }

        // 2. Start pending jobs. Head-of-queue starts are drained once
        // on exit (`consumed`) instead of one O(n) front-removal each.
        let mut consumed = 0;
        loop {
            // First eligible pending job is the "head" holding the
            // reservation.
            let Some(head_pos) =
                (consumed..self.pending.len()).find(|&p| self.eligible(self.pending[p], now))
            else {
                self.pending.drain(..consumed);
                return;
            };
            let head_idx = self.pending[head_pos];
            if let Some(alloc) = self.choose_alloc(head_idx, now) {
                if head_pos == consumed {
                    // Contiguous head start: defer the removal.
                    consumed += 1;
                } else {
                    // Mid-list head (carbon-aware eligibility gaps).
                    self.pending.remove(head_pos);
                }
                let work = self.jobs[head_idx].work;
                self.start_job(head_idx, alloc, work, now);
                continue;
            }
            // Head blocked: drain started heads before backfill walks
            // the list, then backfill if the policy allows.
            self.pending.drain(..consumed);
            if matches!(self.cfg.policy, Policy::Fcfs) {
                return;
            }
            self.backfill(head_idx, now);
            return;
        }
    }

    /// Conservative backfilling: recompute all reservations from scratch
    /// (standard simulator practice); start exactly the jobs whose
    /// reservation begins now. Reservation durations use user walltime
    /// estimates; actual completions free resources earlier and the next
    /// pass re-plans.
    ///
    /// Long pending queues additionally run a *speculative parallel
    /// phase* per planning round: every candidate's earliest slot is
    /// computed concurrently against the round's immutable profile
    /// snapshot, and the ordered commit loop below re-verifies each slot
    /// against the live profile, recomputing only the invalidated ones.
    /// See [`window_feasible`] for why this is byte-identical to the
    /// serial planner at every thread count.
    fn conservative_schedule(&mut self, now: SimTime) {
        // The profile, the pending snapshot, and the speculative slots
        // live in reusable scratch buffers: a steady-state pass
        // allocates nothing (`collect_into_vec` fills `spec` in place).
        let mut events = std::mem::take(&mut self.scratch.events);
        let mut plan = std::mem::take(&mut self.scratch.plan);
        let mut spec = std::mem::take(&mut self.scratch.spec);
        let caps = (events.capacity(), plan.capacity(), spec.capacity());
        'restart: loop {
            // Availability profile: (time, +freed nodes) from running
            // jobs, kept sorted by time (ties in insertion order, like
            // the stable sort the old per-call slot search did) so the
            // slot search consumes it directly.
            events.clear();
            for r in &self.running {
                let remaining = SimDuration::from_secs(
                    (r.work_remaining - (now - r.last_update).as_secs().max(0.0) * r.rate).max(0.0)
                        / r.rate,
                );
                let t = now + remaining;
                if t > now {
                    sorted_insert(&mut events, (t, r.alloc as i64));
                }
            }
            let mut free_now = self.alloc.free() as i64;

            plan.clear();
            plan.extend_from_slice(&self.pending);

            // Speculative phase: fan the candidates out across the
            // shared worker budget against the immutable snapshot
            // (`free_now`, `events` as built above). Gated behind the
            // queue-length threshold so short queues skip the setup
            // cost, and behind budget availability so a sim running
            // inside a sweep worker stays serial instead of
            // oversubscribing. The gate only picks between two
            // byte-identical code paths.
            let speculate = !plan.is_empty()
                && plan.len() >= par_pending_min()
                && rayon::available_extra_workers() > 0;
            if speculate {
                let jobs = self.jobs;
                let cluster_nodes = self.cfg.cluster.nodes;
                let base_free = free_now;
                let evs: &[(SimTime, i64)] = &events;
                plan.par_iter()
                    .map(|&idx| {
                        let job = &jobs[idx];
                        let (min_alloc, _) = job.bounds();
                        let alloc = job.requested_nodes.max(min_alloc).min(cluster_nodes);
                        earliest_slot_sorted(
                            base_free,
                            evs,
                            now,
                            alloc as i64,
                            job.walltime_estimate,
                        )
                    })
                    .collect_into_vec(&mut spec);
                self.stats.spec_planned += plan.len() as u64;
            } else {
                spec.clear();
            }

            for (k, &idx) in plan.iter().enumerate() {
                let job = &self.jobs[idx];
                let (min_alloc, _) = job.bounds();
                let alloc = job
                    .requested_nodes
                    .max(min_alloc)
                    .min(self.cfg.cluster.nodes);
                let dur = job.walltime_estimate;
                // Find the earliest start ≥ now where `alloc` nodes stay
                // free for `dur`, given the profile. A still-feasible
                // speculative slot *is* that start (see
                // [`window_feasible`]); one invalidated by an earlier
                // commit in this round is recomputed serially.
                let start = if speculate {
                    let s = spec[k];
                    if window_feasible(free_now, &events, s, alloc as i64, dur) {
                        self.stats.spec_hits += 1;
                        s
                    } else {
                        self.stats.spec_invalidations += 1;
                        earliest_slot_sorted(free_now, &events, now, alloc as i64, dur)
                    }
                } else {
                    earliest_slot_sorted(free_now, &events, now, alloc as i64, dur)
                };
                if start == now {
                    // Can the job actually start (power check happens only
                    // at real starts)? `choose_alloc` already guarantees
                    // the class minimum when it returns Some.
                    if let Some(actual) = self.choose_alloc(idx, now) {
                        // `idx` came off the pending list above; retain
                        // removes it without a panicking position lookup.
                        self.pending.retain(|&p| p != idx);
                        let work = job.work;
                        self.start_job(idx, actual, work, now);
                        continue 'restart;
                    }
                    // Power-blocked: fall through and reserve instead.
                }
                // Record the reservation in the profile. Events at or
                // before `now` stay out of it (the old slot search
                // filtered them per call).
                if start == now {
                    free_now -= alloc as i64;
                } else {
                    sorted_insert(&mut events, (start, -(alloc as i64)));
                }
                let end = start + dur;
                if end > now {
                    sorted_insert(&mut events, (end, alloc as i64));
                }
            }
            break;
        }
        if (events.capacity(), plan.capacity(), spec.capacity()) != caps {
            self.stats.scratch_grows += 1;
        }
        self.scratch.events = events;
        self.scratch.plan = plan;
        self.scratch.spec = spec;
    }

    /// EASY backfilling around a blocked head job.
    fn backfill(&mut self, head_idx: usize, now: SimTime) {
        let head_job = &self.jobs[head_idx];
        let (head_min, _) = head_job.bounds();
        let head_need = head_job.requested_nodes.max(head_min);

        // Shadow time: when will enough nodes be free for the head?
        // Uses exact remaining runtimes of running jobs. The frees list
        // lives in scratch and is built pre-sorted (ties in insertion
        // order, matching the old stable sort).
        let mut frees = std::mem::take(&mut self.scratch.frees);
        let frees_cap = frees.capacity();
        frees.clear();
        for r in &self.running {
            let remaining = SimDuration::from_secs(
                (r.work_remaining - (now - r.last_update).as_secs().max(0.0) * r.rate).max(0.0)
                    / r.rate,
            );
            sorted_insert(&mut frees, (now + remaining, r.alloc));
        }
        let mut avail = self.alloc.free();
        let mut shadow = now;
        let mut feasible = true;
        let mut iter = frees.iter();
        while avail < head_need {
            match iter.next() {
                Some(&(t, n)) => {
                    avail += n;
                    shadow = t;
                }
                None => {
                    // Head can never fit (bigger than cluster) — guarded
                    // at submit, but be safe.
                    feasible = false;
                    break;
                }
            }
        }
        if frees.capacity() != frees_cap {
            self.stats.scratch_grows += 1;
        }
        self.scratch.frees = frees;
        if !feasible {
            return;
        }
        // Nodes spare at the shadow time after the head takes its share.
        // Consumed as backfills that outlive the shadow are admitted, so a
        // single pass cannot overdraw it and delay the head.
        let mut spare = avail - head_need;

        // Try to backfill later pending jobs. Started jobs are compacted
        // out in place — same visit order and intervening mutations as
        // the old remove-and-continue loop, without the O(n) removes.
        let mut write = 0;
        let mut read = 0;
        while read < self.pending.len() {
            let idx = self.pending[read];
            // Keep the head; skip ineligible jobs (carbon-aware gate).
            if idx == head_idx || !self.eligible(idx, now) {
                self.pending[write] = idx;
                write += 1;
                read += 1;
                continue;
            }
            let job = &self.jobs[idx];
            let mut started = false;
            if let Some(alloc) = self.choose_alloc(idx, now) {
                let fits_before_shadow = now + job.walltime_estimate <= shadow;
                let fits_in_spare = alloc <= spare;
                if fits_before_shadow || fits_in_spare {
                    if !fits_before_shadow {
                        // This job holds nodes past the shadow: it draws
                        // down the spare pool.
                        spare -= alloc;
                    }
                    let work = job.work;
                    self.start_job(idx, alloc, work, now);
                    started = true;
                }
            }
            if !started {
                self.pending[write] = idx;
                write += 1;
            }
            read += 1;
        }
        self.pending.truncate(write);
    }

    /// Injects node failures for the elapsed tick: the per-node hazard is
    /// tick/MTBF; each failure strikes a uniformly random node. A busy
    /// node kills its job.
    fn inject_failures(&mut self, now: SimTime) {
        let Some(model) = self.cfg.failures.clone() else {
            return;
        };
        // Take the stream out to sidestep aliasing with &mut self calls.
        let Some(mut rng) = self.failure_rng.take() else {
            return;
        };
        let lambda =
            self.cfg.cluster.nodes as f64 * self.cfg.tick.as_secs() / model.node_mtbf.as_secs();
        let failures = rng.poisson(lambda);
        if failures > 0 {
            self.quiescent = false;
        }
        for _ in 0..failures {
            let node = rng.uniform_u64(self.cfg.cluster.nodes as u64) as u32;
            let busy = self.alloc.busy();
            self.total_failures += 1;
            // The node is busy with probability busy/total; map the node
            // index onto the busy range deterministically.
            if node < busy {
                // Pick the victim job weighted by allocation size.
                let mut cursor = node;
                let mut victim = None;
                for (pos, run) in self.running.iter().enumerate() {
                    if cursor < run.alloc {
                        victim = Some(pos);
                        break;
                    }
                    cursor -= run.alloc;
                }
                if let Some(pos) = victim {
                    self.fail_job(pos, now);
                }
            }
            // The failed node goes down for the repair window: take it out
            // of the free pool (a just-killed job freed at least one).
            if self.alloc.free() > 0 {
                self.alloc.claim(1);
                self.queue.schedule(now + model.mttr, Ev::NodeRepaired);
            }
        }
        self.failure_rng = Some(rng);
    }

    /// Kills a running job after a node failure: checkpointable jobs roll
    /// back to the segment boundary; others lose everything and requeue.
    fn fail_job(&mut self, pos: usize, now: SimTime) {
        self.quiescent = false;
        Self::progress(&mut self.running[pos], now);
        self.close_segment(pos, now);
        let run = self.running.remove(pos);
        let job = &self.jobs[run.idx];
        self.alloc.release(run.alloc);
        self.running_power -= job.power_at(run.alloc);
        self.queue.cancel(run.finish_ev);
        self.books[run.idx].restarts += 1;
        if job.checkpointable {
            // Roll back to the last periodic checkpoint: lose only the
            // work since the last whole interval of this segment. The
            // restart overhead is charged once, at resume.
            let interval = self
                .cfg
                .checkpoint
                .as_ref()
                .map(|c| c.interval.as_secs())
                .unwrap_or(3600.0);
            let interval_work = (interval * run.rate).max(1e-9);
            let done_in_segment = (run.seg_start_work - run.work_remaining).max(0.0);
            let covered = (done_in_segment / interval_work).floor() * interval_work;
            let resume_work = run.seg_start_work - covered;
            self.suspended.push((run.idx, resume_work));
        } else {
            // Total loss: back to pending with full work (start_job always
            // begins rigid restarts from job.work).
            self.pending_insert(run.idx, now);
        }
    }

    /// Consults the job-side §3.2 protocol: is a grow offer worth the
    /// reconfiguration cost given the job's remaining work?
    fn grow_accepted(&mut self, pos: usize, proposed: u32, now: SimTime) -> bool {
        Self::progress(&mut self.running[pos], now);
        let run = &self.running[pos];
        let job = &self.jobs[run.idx];
        crate::malleable::evaluate_grow(
            job.speedup,
            run.alloc,
            proposed,
            job.efficient_nodes.max(1),
            run.work_remaining,
            self.cfg.reshape_cost,
        ) == crate::malleable::OfferDecision::Accept
    }

    /// Hourly tick: budget enforcement, checkpoint policy, malleable
    /// growth.
    fn tick(&mut self, now: SimTime) {
        self.tick_scheduled = false;
        sustain_sim_core::faultpoint!(infallible "sim::tick");
        self.inject_failures(now);
        // --- Checkpoint policy: CI-driven suspends (§3.3).
        if let (Some(cfg), Some(ci)) = (self.cfg.checkpoint.clone(), self.ci_at(now)) {
            if ci > cfg.suspend_threshold_fraction * self.trace_mean {
                let mut pos = 0;
                while pos < self.running.len() {
                    let run = &mut self.running[pos];
                    let job = &self.jobs[run.idx];
                    Self::progress(run, now);
                    let remaining = SimDuration::from_secs(run.work_remaining / run.rate);
                    if job.checkpointable && remaining > cfg.min_remaining {
                        self.suspend(pos, now);
                    } else {
                        pos += 1;
                    }
                }
            }
        }

        // --- Power budget enforcement.
        if let Some(budget) = self.budget_at(now) {
            // Shrink malleable jobs first.
            if self.running_power > budget && self.cfg.enable_malleability {
                for pos in 0..self.running.len() {
                    if self.running_power <= budget {
                        break;
                    }
                    let idx = self.running[pos].idx;
                    let job = &self.jobs[idx];
                    let (min, _) = job.bounds();
                    if job.class.is_malleable() && self.running[pos].alloc > min {
                        // Shrink as far as needed, at most to min.
                        let over = self.running_power - budget;
                        let sheddable = (over.watts() / job.power_per_node.watts()).ceil() as u32;
                        let new_alloc = self.running[pos].alloc.saturating_sub(sheddable).max(min);
                        if new_alloc < self.running[pos].alloc {
                            self.reshape(pos, new_alloc, now);
                        }
                    }
                }
            }
            // Then suspend checkpointable jobs (largest power first).
            if self.running_power > budget && self.cfg.checkpoint.is_some() {
                loop {
                    if self.running_power <= budget {
                        break;
                    }
                    let candidate = self
                        .running
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| self.jobs[r.idx].checkpointable)
                        .max_by(|a, b| {
                            self.jobs[a.1.idx]
                                .power_at(a.1.alloc)
                                .cmp(&self.jobs[b.1.idx].power_at(b.1.alloc))
                        })
                        .map(|(pos, _)| pos);
                    match candidate {
                        Some(pos) => self.suspend(pos, now),
                        None => break,
                    }
                }
            }
            // Growth: malleable jobs absorb new headroom.
            if self.cfg.enable_malleability {
                for pos in 0..self.running.len() {
                    let idx = self.running[pos].idx;
                    let job = &self.jobs[idx];
                    let (_, max) = job.bounds();
                    let cur = self.running[pos].alloc;
                    if !job.class.is_malleable() || cur >= max {
                        continue;
                    }
                    let headroom = budget - self.running_power;
                    if headroom <= Power::ZERO {
                        break;
                    }
                    let power_fit = (headroom.watts() / job.power_per_node.watts()) as u32;
                    let useful_cap = job.efficient_nodes.max(1);
                    let grow = (max - cur)
                        .min(self.alloc.free())
                        .min(power_fit)
                        .min(useful_cap.saturating_sub(cur));
                    if grow > 0 && self.grow_accepted(pos, cur + grow, now) {
                        self.reshape(pos, cur + grow, now);
                    }
                }
            }
        } else if self.cfg.enable_malleability {
            // No budget: malleable jobs can still absorb free nodes.
            for pos in 0..self.running.len() {
                let idx = self.running[pos].idx;
                let job = &self.jobs[idx];
                let (_, max) = job.bounds();
                let cur = self.running[pos].alloc;
                if !job.class.is_malleable() || cur >= max {
                    continue;
                }
                let useful_cap = job.efficient_nodes.max(1);
                let grow = (max - cur)
                    .min(self.alloc.free())
                    .min(useful_cap.saturating_sub(cur));
                if grow > 0 && self.grow_accepted(pos, cur + grow, now) {
                    self.reshape(pos, cur + grow, now);
                }
            }
        }

        self.try_schedule(now);
        self.maybe_schedule_tick(now);
    }

    fn work_outstanding(&self) -> bool {
        !self.pending.is_empty()
            || !self.running.is_empty()
            || !self.suspended.is_empty()
            || self.submitted < self.jobs.len()
    }

    fn needs_ticks(&self) -> bool {
        // Ticks matter only when time-varying machinery is active.
        (self.cfg.power_budget.is_some()
            || self.cfg.checkpoint.is_some()
            || self.cfg.enable_malleability
            || self.cfg.failures.is_some()
            || matches!(self.cfg.policy, Policy::CarbonAware(_)))
            && self.work_outstanding()
    }

    fn maybe_schedule_tick(&mut self, now: SimTime) {
        if !self.tick_scheduled && self.needs_ticks() {
            self.queue.schedule(now + self.cfg.tick, Ev::Tick);
            self.tick_scheduled = true;
        }
    }

    /// Number of event-loop steps between cancellation checks when a
    /// control is attached. Power-of-two so the gate is a mask; easy
    /// runs can have zero ticks, so gating on ticks alone would never
    /// observe a cancellation there.
    const CTL_CHECK_MASK: u64 = 255;

    fn run(mut self, ctl: Option<&RunCtl>) -> Result<SimOutcome, SimError> {
        for (i, job) in self.jobs.iter().enumerate() {
            self.queue.schedule(job.submit, Ev::Submit(i));
        }
        self.maybe_schedule_tick(SimTime::ZERO);

        let mut steps = 0u64;
        while let Some((t, ev)) = self.queue.pop() {
            steps += 1;
            if steps > self.cfg.max_steps {
                break;
            }
            if let Some(ctl) = ctl {
                // Bucket-granularity cancellation: every 256 events or
                // at any tick, whichever comes first.
                if steps & Self::CTL_CHECK_MASK == 0 || matches!(ev, Ev::Tick) {
                    ctl.check(t)?;
                }
            }
            self.account(t);
            match ev {
                Ev::Submit(idx) => {
                    self.submitted += 1;
                    let job = &self.jobs[idx];
                    let (min, _) = job.bounds();
                    // A job whose minimum allocation can never fit the
                    // best-ever power budget would pend forever: reject.
                    let power_feasible = match self.max_budget {
                        Some(max) => job.power_at(min) <= max,
                        None => true,
                    };
                    let admitted = match &self.cfg.queues {
                        Some(qs) => match qs.classify(job) {
                            Some(q) => {
                                self.priorities[idx] = q.priority;
                                true
                            }
                            None => false,
                        },
                        None => true,
                    };
                    if min > self.cfg.cluster.nodes || !admitted || !power_feasible {
                        self.books[idx].rejected = true;
                        self.rejected += 1;
                    } else {
                        self.pending_insert(idx, t);
                        self.try_schedule(t);
                    }
                    self.maybe_schedule_tick(t);
                }
                Ev::Finish(id) => {
                    self.finish_job(id, t);
                    self.try_schedule(t);
                }
                Ev::Tick => self.tick(t),
                Ev::NodeRepaired => {
                    self.quiescent = false;
                    self.alloc.release(1);
                    self.try_schedule(t);
                }
            }
        }

        self.stats.events = steps;
        self.stats.trace_bucket_hits = self.trace_hits.get();
        self.stats.trace_bucket_misses = self.trace_misses.get();

        // Build records.
        let mut records = Vec::with_capacity(self.completed);
        for (idx, book) in self.books.iter().enumerate() {
            if let (Some(start), Some(end)) = (book.start, book.end) {
                let job = &self.jobs[idx];
                records.push(JobRecord {
                    id: job.id,
                    user: job.user,
                    submit: job.submit,
                    start,
                    end,
                    segments: book.segments.clone(),
                    suspensions: book.suspensions,
                    reshapes: book.reshapes,
                    restarts: book.restarts,
                });
            }
        }
        records.sort_by_key(|a| a.id);
        let unfinished = self.jobs.len() - records.len();
        let mut out = SimOutcome::from_records(
            records,
            unfinished,
            self.cfg.cluster.nodes,
            self.cfg.carbon_trace.as_ref(),
            self.idle_energy,
            self.idle_carbon,
            self.violation_seconds,
        );
        out.hot_path = self.stats;
        crate::metrics::record_hot_path_totals(&out.hot_path);
        Ok(out)
    }
}

/// Earliest time ≥ `now` at which `alloc` nodes remain continuously free
/// for `dur`. Unlike the reference [`earliest_slot`], this expects
/// `evs` pre-sorted by time with every entry strictly after `now` — the
/// conservative pass maintains its profile that way — so the search is a
/// single allocation-free sweep: a running prefix (`free`, `consumed`)
/// advances candidate by candidate instead of re-summing per candidate.
fn earliest_slot_sorted(
    free_now: i64,
    evs: &[(SimTime, i64)],
    now: SimTime,
    alloc: i64,
    dur: SimDuration,
) -> SimTime {
    // Candidate start times: `now`, then every event time.
    let mut free = free_now;
    let mut consumed = 0usize;
    let mut candidate = now;
    loop {
        // Fold in every event at or before the candidate; equal-time
        // runs fold together, like the reference's `take_while(<= t0)`,
        // which also means duplicate candidate times are visited once.
        while consumed < evs.len() && evs[consumed].0 <= candidate {
            free += evs[consumed].1;
            consumed += 1;
        }
        if free >= alloc {
            // Check the window [candidate, candidate + dur) stays
            // feasible against the strictly-later events.
            let t_end = candidate + dur;
            let mut ok = true;
            let mut f = free;
            for e in &evs[consumed..] {
                if e.0 >= t_end {
                    break;
                }
                f += e.1;
                if f < alloc {
                    ok = false;
                    break;
                }
            }
            if ok {
                return candidate;
            }
        }
        if consumed >= evs.len() {
            break;
        }
        candidate = evs[consumed].0;
    }
    // No feasible window found (should not happen when alloc ≤ cluster);
    // fall back to after the last event.
    evs.last().map(|e| e.0).unwrap_or(now)
}

/// Earliest time ≥ `now` at which `alloc` nodes remain continuously free
/// for `dur`, given `free_now` free nodes and a list of (time, delta)
/// availability events (positive = nodes freed, negative = reservation).
///
/// Reference implementation: filters and sorts per call. Kept as the
/// oracle [`earliest_slot_sorted`] is tested against.
#[cfg(test)]
fn earliest_slot(
    free_now: i64,
    events: &[(SimTime, i64)],
    now: SimTime,
    alloc: i64,
    dur: SimDuration,
) -> SimTime {
    let mut evs: Vec<(SimTime, i64)> = events.iter().copied().filter(|e| e.0 > now).collect();
    evs.sort_by_key(|a| a.0);
    // Candidate start times: now and every event time.
    let mut candidates: Vec<SimTime> = Vec::with_capacity(evs.len() + 1);
    candidates.push(now);
    candidates.extend(evs.iter().map(|e| e.0));
    for &t0 in &candidates {
        let t_end = t0 + dur;
        // Free nodes at t0.
        let mut free = free_now
            + evs
                .iter()
                .take_while(|e| e.0 <= t0)
                .map(|e| e.1)
                .sum::<i64>();
        if free < alloc {
            continue;
        }
        // Check the window stays feasible.
        let mut ok = true;
        for e in evs.iter().skip_while(|e| e.0 <= t0) {
            if e.0 >= t_end {
                break;
            }
            free += e.1;
            if free < alloc {
                ok = false;
                break;
            }
        }
        if ok {
            return t0;
        }
    }
    // No feasible window found (should not happen when alloc ≤ cluster);
    // fall back to after the last event.
    evs.last().map(|e| e.0).unwrap_or(now)
}

/// Runs the simulator over a job list.
///
/// ```
/// use sustain_scheduler::cluster::Cluster;
/// use sustain_scheduler::sim::{simulate, SimConfig};
/// use sustain_sim_core::time::{SimDuration, SimTime};
/// use sustain_workload::job::JobBuilder;
///
/// let job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(2.0)).build();
/// let out = simulate(&[job], &SimConfig::easy(Cluster::new(8)));
/// assert_eq!(out.records.len(), 1);
/// assert!((out.records[0].span().as_hours() - 2.0).abs() < 1e-9);
/// ```
pub fn simulate(jobs: &[Job], cfg: &SimConfig) -> SimOutcome {
    match Sim::new(jobs, cfg).run(None) {
        Ok(out) => out,
        // With no control attached the loop has no cancellation point.
        Err(_) => unreachable!("uncontrolled simulation cannot be cancelled"),
    }
}

/// [`simulate`] with a cooperative cancellation control: the event loop
/// checks `ctl` at bucket granularity (every 256 events or at any tick)
/// and returns [`SimError::Cancelled`] stamped with the simulation time
/// reached. An unlimited control adds only the per-bucket check.
pub fn simulate_with_ctl(
    jobs: &[Job],
    cfg: &SimConfig,
    ctl: &RunCtl,
) -> Result<SimOutcome, SimError> {
    Sim::new(jobs, cfg).run(Some(ctl))
}

/// Fallible front door for untrusted configurations: validates `cfg` up
/// front and returns a typed [`SimError`] instead of panicking somewhere
/// in the event loop. Internal invariant asserts remain — they fire on
/// simulator bugs, not on bad input that got past this gate.
pub fn try_simulate(jobs: &[Job], cfg: &SimConfig) -> Result<SimOutcome, SimError> {
    cfg.validate()?;
    Ok(simulate(jobs, cfg))
}

/// [`try_simulate`] with a cancellation control: validates up front,
/// then runs under `ctl` like [`simulate_with_ctl`].
pub fn try_simulate_with_ctl(
    jobs: &[Job],
    cfg: &SimConfig,
    ctl: &RunCtl,
) -> Result<SimOutcome, SimError> {
    cfg.validate()?;
    simulate_with_ctl(jobs, cfg, ctl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_sim_core::series::TimeSeries;
    use sustain_workload::job::{JobBuilder, JobClass};

    fn rigid(id: u64, submit_h: f64, nodes: u32, runtime_h: f64) -> Job {
        JobBuilder::new(
            id,
            SimTime::from_hours(submit_h),
            nodes,
            SimDuration::from_hours(runtime_h),
        )
        .power_per_node(Power::from_watts(500.0))
        .build()
    }

    #[test]
    fn single_job_runs_to_completion() {
        let jobs = vec![rigid(1, 0.0, 4, 2.0)];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.unfinished, 0);
        let r = &out.records[0];
        assert_eq!(r.wait(), SimDuration::ZERO);
        assert!((r.span().as_hours() - 2.0).abs() < 1e-9);
        assert_eq!(r.segments.len(), 1);
        assert_eq!(r.segments[0].nodes, 4);
        // Energy: 4 × 500 W × 2 h = 4 kWh.
        assert!((r.energy().kwh() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fcfs_queues_when_full() {
        // 8-node cluster; two 8-node jobs must serialize.
        let jobs = vec![rigid(1, 0.0, 8, 2.0), rigid(2, 0.0, 8, 1.0)];
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::Fcfs,
                ..SimConfig::easy(Cluster::new(8))
            },
        );
        let r2 = &out.records[1];
        assert!((r2.wait().as_hours() - 2.0).abs() < 1e-9);
        assert!((out.makespan.as_hours() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn easy_backfills_small_job() {
        // Cluster 8. Job1 takes 6 nodes for 4 h. Job2 wants 8 (blocked
        // until t=4). Job3 wants 2 nodes for 1 h → backfills immediately
        // (2 ≤ free and finishes before the shadow anyway).
        let jobs = vec![
            rigid(1, 0.0, 6, 4.0),
            rigid(2, 0.1, 8, 1.0),
            rigid(3, 0.2, 2, 1.0),
        ];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            r3.start.as_hours() < 0.3,
            "job3 should backfill, started at {}",
            r3.start
        );
        // FCFS would have made job3 wait behind job2 until t=4.
        let fcfs = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::Fcfs,
                ..SimConfig::easy(Cluster::new(8))
            },
        );
        let r3f = fcfs.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(r3f.start.as_hours() >= 4.0);
    }

    #[test]
    fn backfill_spare_not_overcommitted() {
        // All candidates queue while jobA fills the cluster, so one
        // scheduling pass (jobA's finish at t=1) sees them all. Then:
        // jobB takes 4 nodes until t=5; the head (job2) needs 8 → shadow
        // t=5 with spare 2. Jobs 3 and 4 (2 nodes × 8 h) each fit the
        // spare alone, but both together would overdraw it and delay the
        // head past t=5.
        let jobs = vec![
            rigid(1, 0.0, 10, 1.0), // fills the cluster until t=1
            rigid(5, 0.05, 4, 4.0), // jobB: 4 nodes, t=1..5
            rigid(2, 0.1, 8, 1.0),  // the head reservation
            rigid(3, 0.2, 2, 8.0),
            rigid(4, 0.3, 2, 8.0),
        ];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(10)));
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        assert!(
            (r2.start.as_hours() - 5.0).abs() < 1e-6,
            "head delayed to {} by overcommitted spare",
            r2.start
        );
    }

    #[test]
    fn backfill_does_not_delay_head_reservation() {
        // Cluster 8. Job1: 6 nodes, 4 h. Job2 (head): 8 nodes → shadow t=4.
        // Job3: 4 nodes, 8 h — would push the head past t=4 (only 2 spare),
        // must NOT backfill.
        let jobs = vec![
            rigid(1, 0.0, 6, 4.0),
            rigid(2, 0.1, 8, 1.0),
            rigid(3, 0.2, 4, 8.0),
        ];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        assert!(
            (r2.start.as_hours() - 4.0).abs() < 1e-6,
            "head delayed to {}",
            r2.start
        );
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(r3.start >= r2.start);
    }

    #[test]
    fn oversized_job_rejected_not_hung() {
        let jobs = vec![rigid(1, 0.0, 64, 1.0), rigid(2, 0.0, 4, 1.0)];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        assert_eq!(out.unfinished, 1);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].id, JobId(2));
    }

    #[test]
    fn power_budget_limits_concurrency() {
        // Each job: 4 nodes × 500 W = 2 kW. Budget 3 kW → jobs serialize.
        let jobs = vec![rigid(1, 0.0, 4, 1.0), rigid(2, 0.0, 4, 1.0)];
        let budget = TimeSeries::constant(SimTime::ZERO, SimDuration::from_hours(1.0), 3000.0, 100);
        let out = simulate(
            &jobs,
            &SimConfig {
                power_budget: Some(budget),
                ..SimConfig::easy(Cluster::new(16))
            },
        );
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        assert!(
            r2.start.as_hours() >= 1.0,
            "job2 must wait for power, started {}",
            r2.start
        );
        assert_eq!(out.budget_violation_seconds, 0.0);
    }

    #[test]
    fn utilization_and_idle_energy_accounted() {
        let jobs = vec![rigid(1, 0.0, 4, 2.0)];
        let cluster = Cluster::new(8).with_idle_power(Power::from_watts(100.0));
        let out = simulate(&jobs, &SimConfig::easy(cluster));
        // 4 of 8 nodes busy for the whole 2 h makespan → 50 %.
        assert!((out.utilization - 0.5).abs() < 1e-9);
        // Idle: 4 idle nodes × 100 W × 2 h = 0.8 kWh.
        assert!((out.idle_energy.kwh() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = sustain_workload::synth::WorkloadConfig::default();
        let jobs = sustain_workload::synth::generate(&cfg, SimDuration::from_hours(48.0), 5);
        let a = simulate(&jobs, &SimConfig::easy(Cluster::new(256)));
        let b = simulate(&jobs, &SimConfig::easy(Cluster::new(256)));
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.utilization, b.utilization);
    }

    #[test]
    fn synthetic_trace_completes_under_easy() {
        let cfg = sustain_workload::synth::WorkloadConfig::default();
        let jobs = sustain_workload::synth::generate(&cfg, SimDuration::from_hours(24.0 * 7.0), 9);
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(600)));
        assert_eq!(out.unfinished, 0, "all jobs should finish");
        assert!(out.utilization > 0.05 && out.utilization < 1.0);
        // No job may ever hold more nodes than the cluster.
        for r in &out.records {
            for s in &r.segments {
                assert!(s.nodes <= 600);
            }
        }
    }

    #[test]
    fn malleable_job_grows_into_free_nodes() {
        let malleable = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(8.0))
            .class(JobClass::Malleable {
                min_nodes: 2,
                max_nodes: 16,
            })
            .efficient_nodes(16)
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(16));
        cfg.enable_malleability = true;
        let out = simulate(&[malleable], &cfg);
        let r = &out.records[0];
        assert!(r.reshapes > 0, "job should have grown");
        // Growth speeds the job up beyond its 8 h @ 4-node runtime.
        assert!(
            r.span().as_hours() < 8.0,
            "span {} should beat the rigid runtime",
            r.span()
        );
        assert_eq!(out.unfinished, 0);
    }

    #[test]
    fn checkpoint_suspends_during_high_carbon() {
        // CI: mean 200; hours 2-9 are 400 (high) → suspend threshold hit.
        let mut ci = vec![100.0; 2];
        ci.extend(vec![400.0; 7]);
        ci.extend(vec![100.0; 15]);
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), ci),
        );
        let job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(6.0))
            .checkpointable(true)
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.carbon_trace = Some(trace);
        cfg.checkpoint = Some(CheckpointCfg::default());
        let out = simulate(&[job], &cfg);
        let r = &out.records[0];
        assert!(r.suspensions >= 1, "job should suspend in the brown window");
        assert!(r.segments.len() >= 2);
        // Span exceeds pure compute time because of the suspension gap.
        assert!(r.span() > r.compute_time());
        assert_eq!(out.unfinished, 0);
    }

    #[test]
    fn carbon_aware_gate_delays_long_jobs_to_green_windows() {
        // CI: first 6 h dirty (400), then green (100). Mean ≈ 175..250.
        let mut ci = vec![400.0; 6];
        ci.extend(vec![100.0; 42]);
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), ci),
        );
        let long_job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(5.0))
            .walltime(SimDuration::from_hours(8.0))
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.carbon_trace = Some(trace);
        cfg.policy = Policy::CarbonAware(CarbonAwareCfg::default());
        let out = simulate(&[long_job], &cfg);
        let r = &out.records[0];
        assert!(
            r.start.as_hours() >= 6.0,
            "long job should wait for the green window, started {}",
            r.start
        );
    }

    #[test]
    fn carbon_aware_gate_lets_short_jobs_through() {
        let mut ci = vec![400.0; 6];
        ci.extend(vec![100.0; 42]);
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), ci),
        );
        let short_job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(0.5))
            .walltime(SimDuration::from_hours(1.0))
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.carbon_trace = Some(trace);
        cfg.policy = Policy::CarbonAware(CarbonAwareCfg::default());
        let out = simulate(&[short_job], &cfg);
        assert_eq!(out.records[0].start, SimTime::ZERO);
    }

    #[test]
    fn max_delay_bounds_carbon_waiting() {
        // Permanently dirty grid: the gate must still release jobs after
        // max_delay.
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(
                SimTime::ZERO,
                SimDuration::from_hours(1.0),
                vec![400.0; 200],
            ),
        );
        let job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(5.0))
            .walltime(SimDuration::from_hours(8.0))
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.carbon_trace = Some(trace);
        cfg.policy = Policy::CarbonAware(CarbonAwareCfg {
            max_delay: SimDuration::from_hours(12.0),
            ..CarbonAwareCfg::default()
        });
        let out = simulate(&[job], &cfg);
        assert_eq!(out.unfinished, 0);
        let r = &out.records[0];
        assert!(r.start.as_hours() <= 13.0, "started {}", r.start);
        assert!(r.start.as_hours() >= 11.0, "started {}", r.start);
    }

    #[test]
    fn failures_restart_jobs_and_repair_nodes() {
        // Aggressive failures: per-node MTBF of 2 days on an 8-node
        // cluster running a long job.
        let job = JobBuilder::new(1, SimTime::ZERO, 8, SimDuration::from_hours(48.0))
            .walltime(SimDuration::from_hours(96.0))
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.failures = Some(FailureModel {
            node_mtbf: SimDuration::from_days(2.0),
            mttr: SimDuration::from_hours(4.0),
            seed: 7,
        });
        let out = simulate(&[job], &cfg);
        assert_eq!(out.unfinished, 0, "job must eventually complete");
        let r = &out.records[0];
        assert!(
            r.restarts > 0,
            "48 h on failing hardware must hit a failure"
        );
        // Non-checkpointable: every restart redoes the full 48 h, so the
        // span is at least restarts+1 full runs minus the last partials.
        assert!(r.span().as_hours() > 48.0);
    }

    #[test]
    fn checkpointable_jobs_lose_less_to_failures() {
        let mk = |ckpt: bool| {
            JobBuilder::new(1, SimTime::ZERO, 8, SimDuration::from_hours(48.0))
                .walltime(SimDuration::from_hours(96.0))
                .checkpointable(ckpt)
                .build()
        };
        let run_with = |job| {
            let mut cfg = SimConfig::easy(Cluster::new(8));
            cfg.failures = Some(FailureModel {
                node_mtbf: SimDuration::from_days(2.0),
                mttr: SimDuration::from_hours(1.0),
                seed: 11,
            });
            cfg.checkpoint = Some(CheckpointCfg {
                // Disable CI-driven behaviour; we only want failure
                // recovery overheads here.
                suspend_threshold_fraction: f64::INFINITY,
                resume_threshold_fraction: f64::INFINITY,
                ..CheckpointCfg::default()
            });
            simulate(&[job], &cfg)
        };
        let plain = run_with(mk(false));
        let ckpt = run_with(mk(true));
        assert_eq!(plain.unfinished, 0);
        assert_eq!(ckpt.unfinished, 0);
        // Same failure seed: the checkpointable variant wastes less
        // compute redoing lost work.
        assert!(
            ckpt.records[0].compute_time() <= plain.records[0].compute_time(),
            "ckpt {} vs plain {}",
            ckpt.records[0].compute_time(),
            plain.records[0].compute_time()
        );
    }

    #[test]
    fn reliable_hardware_has_no_restarts() {
        let jobs = vec![rigid(1, 0.0, 4, 10.0)];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        assert_eq!(out.records[0].restarts, 0);
    }

    #[test]
    fn power_infeasible_job_rejected_not_pending_forever() {
        // 100-node job × 500 W = 50 kW demand, but the budget never
        // exceeds 10 kW: the job must be rejected at submit (not pend
        // forever, burning ticks to the step cap).
        let jobs = vec![rigid(1, 0.0, 100, 1.0), rigid(2, 0.0, 4, 1.0)];
        let budget =
            TimeSeries::constant(SimTime::ZERO, SimDuration::from_hours(1.0), 10_000.0, 48);
        let mut cfg = SimConfig::easy(Cluster::new(128));
        cfg.power_budget = Some(budget);
        cfg.max_steps = 100_000;
        let out = simulate(&jobs, &cfg);
        assert_eq!(out.unfinished, 1);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].id, JobId(2));
        // And the run terminated quickly (no runaway tick loop): the
        // makespan is the small job's completion.
        assert!(out.makespan.as_hours() <= 2.0);
    }

    #[test]
    fn fair_share_demotes_heavy_user() {
        // User 0 hogs the machine with job1; then user 0 and user 1 submit
        // identical jobs while it runs. Under fair-share, user 1 goes
        // first once nodes free, despite user 0 submitting earlier.
        let mk = |id: u64, user: u32, submit_h: f64| {
            JobBuilder::new(
                id,
                SimTime::from_hours(submit_h),
                8,
                SimDuration::from_hours(1.0),
            )
            .user(user)
            .build()
        };
        let jobs = vec![mk(1, 0, 0.0), mk(2, 0, 0.1), mk(3, 1, 0.2)];
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.fair_share = Some(FairShareCfg::default());
        let out = simulate(&jobs, &cfg);
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            r3.start < r2.start,
            "light user's job3 ({}) should beat heavy user's job2 ({})",
            r3.start,
            r2.start
        );
        // Without fair-share, FIFO order holds.
        let plain = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        let p2 = plain.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let p3 = plain.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(p2.start < p3.start);
    }

    #[test]
    fn fair_share_usage_decays() {
        // After a long idle gap, past usage decays away and FIFO returns.
        let mk = |id: u64, user: u32, submit_h: f64| {
            JobBuilder::new(
                id,
                SimTime::from_hours(submit_h),
                8,
                SimDuration::from_hours(1.0),
            )
            .user(user)
            .build()
        };
        // User 0 used the machine long ago (job1 at t=0); hundreds of
        // half-lives later both users submit.
        let jobs = vec![mk(1, 0, 0.0), mk(2, 0, 10_000.0), mk(3, 1, 10_000.1)];
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.fair_share = Some(FairShareCfg {
            half_life: SimDuration::from_hours(1.0),
        });
        let out = simulate(&jobs, &cfg);
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            r2.start <= r3.start,
            "decayed usage should restore FIFO: job2 {} vs job3 {}",
            r2.start,
            r3.start
        );
    }

    #[test]
    fn conservative_backfill_does_not_delay_any_reservation() {
        // Cluster 8. Job1: 6 nodes, 4 h. Job2: 8 nodes (reserved at t=4).
        // Job3: 2 nodes, walltime 8 h — EASY would backfill it into the
        // 2 spare nodes; conservative also allows it (it delays nothing:
        // job2 needs all 8 at t=4, but job3 uses spare nodes until t=4?
        // No — job3 holds 2 nodes until t≈8, which WOULD delay job2, so
        // conservative must NOT start it now).
        let jobs = vec![
            rigid(1, 0.0, 6, 4.0),
            rigid(2, 0.1, 8, 1.0),
            rigid(3, 0.2, 2, 8.0),
        ];
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::ConservativeBackfill,
                ..SimConfig::easy(Cluster::new(8))
            },
        );
        assert_eq!(out.unfinished, 0);
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            (r2.start.as_hours() - 4.0).abs() < 1e-6,
            "head reservation delayed: {}",
            r2.start
        );
        assert!(r3.start >= r2.start, "job3 jumped ahead and delayed job2");
    }

    #[test]
    fn conservative_backfills_truly_harmless_jobs() {
        // Same as above but job3 fits entirely before the shadow (1 h
        // walltime): conservative lets it in.
        let jobs = vec![
            rigid(1, 0.0, 6, 4.0),
            rigid(2, 0.1, 8, 1.0),
            rigid(3, 0.2, 2, 1.0),
        ];
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::ConservativeBackfill,
                ..SimConfig::easy(Cluster::new(8))
            },
        );
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(r3.start.as_hours() < 0.3, "harmless job not backfilled");
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        assert!((r2.start.as_hours() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn conservative_completes_random_workload() {
        let cfg_wl = sustain_workload::synth::WorkloadConfig::default();
        let jobs = sustain_workload::synth::generate(&cfg_wl, SimDuration::from_hours(48.0), 21);
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::ConservativeBackfill,
                ..SimConfig::easy(Cluster::new(600))
            },
        );
        assert_eq!(out.unfinished, 0);
        // Conservative is at least as conservative as EASY: mean wait is
        // not lower than EASY's by construction artifacts; just check
        // sanity bounds.
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
    }

    #[test]
    fn queue_priorities_reorder_pending() {
        use crate::queue::{QueueConfig, QueueSet};
        // Two queues: "fast" (small jobs, high priority) and "slow".
        let queues = QueueSet {
            queues: vec![
                QueueConfig {
                    name: "fast".into(),
                    priority: 10,
                    min_nodes: 1,
                    max_nodes: 2,
                    max_walltime: SimDuration::from_hours(100.0),
                },
                QueueConfig {
                    name: "slow".into(),
                    priority: 1,
                    min_nodes: 1,
                    max_nodes: 64,
                    max_walltime: SimDuration::from_hours(100.0),
                },
            ],
        };
        // Cluster 4 busy until t=2 with job0; then a slow 4-node job
        // (submitted first) and a fast 2-node job (submitted later)
        // compete. Priority puts the fast job first in line under FCFS.
        let jobs = vec![
            rigid(1, 0.0, 4, 2.0),
            rigid(2, 0.5, 4, 1.0),
            rigid(3, 0.6, 2, 1.0),
        ];
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::Fcfs,
                queues: Some(queues),
                ..SimConfig::easy(Cluster::new(4))
            },
        );
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            r3.start < r2.start,
            "high-priority job3 ({}) should start before job2 ({})",
            r3.start,
            r2.start
        );
    }

    #[test]
    fn unadmittable_jobs_rejected_by_queues() {
        use crate::queue::QueueSet;
        let queues = QueueSet::typical(64);
        // 65-node request: no queue admits it on a 64-node layout.
        let jobs = vec![rigid(1, 0.0, 65, 1.0), rigid(2, 0.0, 4, 1.0)];
        let out = simulate(
            &jobs,
            &SimConfig {
                queues: Some(queues),
                ..SimConfig::easy(Cluster::new(128))
            },
        );
        assert_eq!(out.unfinished, 1);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].id, JobId(2));
    }

    #[test]
    fn shrink_on_budget_drop() {
        // Malleable job at 8 nodes × 500 W = 4 kW; budget drops to 2 kW at
        // hour 1 → shrink to 4 nodes.
        let job = JobBuilder::new(1, SimTime::ZERO, 8, SimDuration::from_hours(4.0))
            .class(JobClass::Malleable {
                min_nodes: 2,
                max_nodes: 8,
            })
            .build();
        let mut budget = vec![5000.0];
        budget.extend(vec![2000.0; 100]);
        let series = TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), budget);
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.power_budget = Some(series);
        cfg.enable_malleability = true;
        let out = simulate(&[job], &cfg);
        let r = &out.records[0];
        assert!(r.reshapes >= 1, "job should shrink");
        // After the shrink it runs slower (fewer nodes) → span > 4 h.
        assert!(r.span().as_hours() > 4.0);
        // Violation window at most the tick quantization.
        assert!(out.budget_violation_seconds <= 3700.0);
        assert_eq!(out.unfinished, 0);
    }

    /// The allocation-free sweep must agree with the filter-and-sort
    /// reference on a dense grid of profiles, including duplicate event
    /// times, reservations (negative deltas), infeasible windows and
    /// events at or before `now` (which the sorted variant expects to be
    /// pre-filtered).
    #[test]
    fn earliest_slot_sorted_matches_reference() {
        let t = SimTime::from_hours;
        let d = SimDuration::from_hours;
        let patterns: &[&[(f64, i64)]] = &[
            &[],
            &[(1.0, 4)],
            &[(1.0, 2), (1.0, 2), (2.0, -4), (3.0, 4)],
            &[(0.5, -2), (0.5, 2), (1.5, 4), (1.5, -4), (4.0, 8)],
            &[(2.0, -3), (2.0, -1), (5.0, 4), (6.0, 4)],
            &[(1.0, 1), (2.0, 1), (3.0, 1), (4.0, 1), (5.0, 1)],
            &[(3.0, -8), (7.0, 8)],
        ];
        let mut cases = 0u32;
        for raw in patterns {
            for free_now in 0..6i64 {
                for alloc in 1..6i64 {
                    for dur_h in [0.25, 1.0, 2.5, 10.0] {
                        let now = t(1.0);
                        let events: Vec<(SimTime, i64)> =
                            raw.iter().map(|&(h, n)| (t(h), n)).collect();
                        // The sorted variant's contract: strictly-future
                        // events, pre-sorted, ties in insertion order —
                        // exactly what the reference's filter + stable
                        // sort produces internally.
                        let mut sorted: Vec<(SimTime, i64)> =
                            events.iter().copied().filter(|e| e.0 > now).collect();
                        sorted.sort_by_key(|e| e.0);
                        assert_eq!(
                            earliest_slot_sorted(free_now, &sorted, now, alloc, d(dur_h)),
                            earliest_slot(free_now, &events, now, alloc, d(dur_h)),
                            "pattern {raw:?} free_now={free_now} alloc={alloc} dur={dur_h}h"
                        );
                        cases += 1;
                    }
                }
            }
        }
        assert!(cases > 500);
    }

    /// `window_feasible` must agree with the slot search: on every
    /// profile in the reference grid, the returned slot is the earliest
    /// candidate whose window verifies feasible, and every earlier
    /// candidate fails verification. This is the exactness the
    /// speculative commit loop relies on.
    #[test]
    fn window_feasible_matches_slot_search_candidates() {
        let t = SimTime::from_hours;
        let d = SimDuration::from_hours;
        let patterns: &[&[(f64, i64)]] = &[
            &[],
            &[(1.0, 4)],
            &[(1.0, 2), (1.0, 2), (2.0, -4), (3.0, 4)],
            &[(0.5, -2), (0.5, 2), (1.5, 4), (1.5, -4), (4.0, 8)],
            &[(2.0, -3), (2.0, -1), (5.0, 4), (6.0, 4)],
            &[(1.0, 1), (2.0, 1), (3.0, 1), (4.0, 1), (5.0, 1)],
            &[(3.0, -8), (7.0, 8)],
        ];
        for raw in patterns {
            for free_now in 0..6i64 {
                for alloc in 1..6i64 {
                    for dur_h in [0.25, 1.0, 2.5, 10.0] {
                        let now = t(1.0);
                        let mut sorted: Vec<(SimTime, i64)> = raw
                            .iter()
                            .map(|&(h, n)| (t(h), n))
                            .filter(|e| e.0 > now)
                            .collect();
                        sorted.sort_by_key(|e| e.0);
                        let dur = d(dur_h);
                        let got = earliest_slot_sorted(free_now, &sorted, now, alloc, dur);
                        let mut candidates = vec![now];
                        candidates.extend(sorted.iter().map(|e| e.0));
                        for &c in candidates.iter().filter(|&&c| c < got) {
                            assert!(
                                !window_feasible(free_now, &sorted, c, alloc, dur),
                                "candidate {c:?} before slot {got:?} verified feasible \
                                 (pattern {raw:?} free_now={free_now} alloc={alloc})"
                            );
                        }
                        if !window_feasible(free_now, &sorted, got, alloc, dur) {
                            // Fallback slot (no feasible window at all):
                            // then no candidate may verify.
                            for &c in &candidates {
                                assert!(!window_feasible(free_now, &sorted, c, alloc, dur));
                            }
                        }
                    }
                }
            }
        }
    }

    /// The speculative parallel planner must be byte-identical to the
    /// serial one on a congested conservative-backfill scenario (the
    /// goldens and `tests/parallel_planning.rs` cover this at scale;
    /// this is the fast in-tree check that also asserts the speculative
    /// path actually ran).
    #[test]
    fn speculative_planning_is_byte_identical_to_serial() {
        let jobs: Vec<Job> = (0..160)
            .map(|i| {
                let size = 1 + (i % 7) as u32 * 2;
                let runtime = 0.5 + (i % 11) as f64 * 0.7;
                rigid(i, (i / 4) as f64 * 0.25, size.min(14), runtime)
            })
            .collect();
        let mut cfg = SimConfig::easy(Cluster::new(16));
        cfg.policy = Policy::ConservativeBackfill;

        set_par_pending_min(usize::MAX);
        let serial = simulate(&jobs, &cfg);

        // The shim's build_global just stores the count; 8 here also
        // makes the run independent of the host's core count.
        rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build_global()
            .unwrap();
        set_par_pending_min(0);
        let speculative = simulate(&jobs, &cfg);
        set_par_pending_min(PAR_PENDING_MIN_DEFAULT);

        assert!(
            speculative.hot_path.spec_planned > 0,
            "speculative phase never engaged: {:?}",
            speculative.hot_path
        );
        assert!(speculative.hot_path.spec_hits > 0, "no speculative hits");
        // A round that starts a job restarts planning and abandons the
        // rest of its speculated slots, so consumed ≤ planned.
        assert!(
            speculative.hot_path.spec_hits + speculative.hot_path.spec_invalidations
                <= speculative.hot_path.spec_planned,
            "consumed more slots than were speculated: {:?}",
            speculative.hot_path
        );
        assert_eq!(serial.records, speculative.records);
        assert_eq!(serial.unfinished, speculative.unfinished);
        assert_eq!(serial.makespan, speculative.makespan);
        assert_eq!(
            serial.budget_violation_seconds,
            speculative.budget_violation_seconds
        );
    }

    /// Steady-state scheduling skips must not change outcomes: a budget
    /// scenario that strands jobs past the end of the series ticks in a
    /// quiescent tail, and the skip counter must grow while the outcome
    /// stays byte-identical to a run with skipping disabled (the goldens
    /// lock this across the corpus; this is the fast in-tree check).
    #[test]
    fn quiescent_skips_accumulate_in_budget_tail() {
        // 4 jobs × 2 nodes × 500 W = 1 kW each; budget 1 kW admits one
        // at a time, then collapses to 100 W so the last job strands.
        let jobs: Vec<Job> = (0..4).map(|i| rigid(i, 0.0, 2, 1.0)).collect();
        let mut budget = vec![1000.0; 3];
        budget.push(100.0);
        let series = TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), budget);
        let mut cfg = SimConfig::easy(Cluster::new(4));
        cfg.power_budget = Some(series);
        cfg.max_steps = 5_000;
        let out = simulate(&jobs, &cfg);
        assert_eq!(out.unfinished, 1, "last job should strand on 100 W");
        // The tail is thousands of hourly ticks at a flat budget value:
        // nearly all of them must skip the scheduling pass.
        assert!(
            out.hot_path.schedule_skips > 4_000,
            "expected a skipped tail, got {:?}",
            out.hot_path
        );
        assert!(out.hot_path.schedule_passes < 100);
        assert_eq!(out.hot_path.events, 5_001);
    }
}
