//! The event-driven RJMS simulator.
//!
//! One simulator covers all the §3 experiments: it schedules a job trace
//! onto a cluster under a (possibly time-varying, carbon-derived) power
//! budget, with pluggable queueing policies (FCFS, EASY backfilling,
//! carbon-aware backfilling), carbon-aware checkpoint/suspend (§3.3), and
//! malleable reshaping (§3.2).
//!
//! Semantics and simplifications (documented here, asserted in tests):
//!
//! * Nodes are homogeneous; a job's power is `power_per_node × alloc`.
//! * Reservation (EASY "shadow time") uses exact remaining runtimes of
//!   running jobs; *backfill candidates* are gated by their user walltime
//!   estimates, as in production EASY.
//! * Suspending a checkpointable job costs `checkpoint_overhead` of extra
//!   work; resuming costs `restart_overhead` (both stretch the remaining
//!   runtime, modelling write-out and restore).
//! * Power budgets bind at scheduling decisions and at hourly ticks; if
//!   shedding (shrink + suspend) cannot get under a newly lowered budget,
//!   the overshoot is recorded as violation time rather than killing jobs.

use crate::cluster::{Allocation, Cluster};
use crate::metrics::{HotPathStats, JobRecord, Segment, SimOutcome};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use sustain_grid::trace::CarbonTrace;
use sustain_sim_core::ctl::RunCtl;
use sustain_sim_core::error::{
    ensure_ordered, ensure_positive, env_knob_usize, ConfigError, SimError, Validate,
};
use sustain_sim_core::event::{EventId, EventQueue};
use sustain_sim_core::hash::{CanonicalHash, CanonicalHasher};
use sustain_sim_core::series::TimeSeries;
use sustain_sim_core::time::{SimDuration, SimTime};
use sustain_sim_core::units::{Carbon, Energy, Power};
use sustain_workload::job::{Job, JobId};

/// Queueing/backfilling policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// First-come-first-served; the head of the queue blocks.
    Fcfs,
    /// EASY backfilling: jobs may jump the queue if they do not delay the
    /// reservation of the head job.
    EasyBackfill,
    /// Conservative backfilling: every queued job holds a reservation; a
    /// job may only start early if it delays no earlier reservation.
    ConservativeBackfill,
    /// EASY backfilling plus carbon-aware start gating (§3.3): delayable
    /// jobs only start in green periods, bounded by a maximum delay.
    CarbonAware(CarbonAwareCfg),
}

impl Validate for Policy {
    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            Policy::CarbonAware(cfg) => cfg.validate().map_err(|e| e.nested("Policy")),
            _ => Ok(()),
        }
    }
}

/// Configuration of the carbon-aware start gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CarbonAwareCfg {
    /// A start is "green" when CI < this fraction of the trace mean.
    pub green_threshold_fraction: f64,
    /// Jobs with walltime estimates at or below this start regardless of
    /// the grid (delaying short jobs saves little carbon and hurts users).
    pub short_job_cutoff: SimDuration,
    /// After waiting this long a job becomes eligible unconditionally
    /// (bounds the worst-case wait).
    pub max_delay: SimDuration,
}

impl Default for CarbonAwareCfg {
    fn default() -> Self {
        CarbonAwareCfg {
            green_threshold_fraction: 0.95,
            short_job_cutoff: SimDuration::from_hours(2.0),
            max_delay: SimDuration::from_hours(24.0),
        }
    }
}

impl Validate for CarbonAwareCfg {
    fn validate(&self) -> Result<(), ConfigError> {
        ensure_positive(
            "CarbonAwareCfg",
            "green_threshold_fraction",
            self.green_threshold_fraction,
        )
        // Durations (`short_job_cutoff`, `max_delay`) are non-negative
        // and finite by construction of `SimDuration`.
    }
}

/// Node-failure injection model: failures strike nodes at a per-node
/// MTBF; a failed busy node kills its job (checkpointable jobs roll back
/// to their last segment boundary, which acts as the checkpoint; others
/// restart from scratch), and the node returns after the repair time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Per-node mean time between failures.
    pub node_mtbf: SimDuration,
    /// Node repair time.
    pub mttr: SimDuration,
    /// RNG seed for the failure process.
    pub seed: u64,
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel {
            node_mtbf: SimDuration::from_days(365.0),
            mttr: SimDuration::from_hours(8.0),
            seed: 0xFA11,
        }
    }
}

impl Validate for FailureModel {
    fn validate(&self) -> Result<(), ConfigError> {
        // MTBF is a rate denominator: zero would mean "every node fails
        // continuously" and divides by zero in the arrival sampling.
        ensure_positive("FailureModel", "node_mtbf", self.node_mtbf.as_secs())
    }
}

/// Fair-share configuration: users' recent (exponentially decayed) usage
/// demotes their pending jobs within the same queue priority — the
/// standard RJMS fairness mechanism, and the §3.4 hook for usage-based
/// incentives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairShareCfg {
    /// Half-life of the usage decay.
    pub half_life: SimDuration,
}

impl Default for FairShareCfg {
    fn default() -> Self {
        FairShareCfg {
            half_life: SimDuration::from_days(7.0),
        }
    }
}

impl Validate for FairShareCfg {
    fn validate(&self) -> Result<(), ConfigError> {
        ensure_positive("FairShareCfg", "half_life", self.half_life.as_secs())
    }
}

/// Carbon-aware checkpoint/suspend configuration (§3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCfg {
    /// Suspend checkpointable jobs when CI > this fraction of the mean.
    pub suspend_threshold_fraction: f64,
    /// Allow resumes when CI < this fraction of the mean (must be ≤ the
    /// suspend threshold for hysteresis).
    pub resume_threshold_fraction: f64,
    /// Extra work (wall time at current allocation) to write a checkpoint.
    pub checkpoint_overhead: SimDuration,
    /// Extra work to restore from a checkpoint.
    pub restart_overhead: SimDuration,
    /// Jobs with less remaining runtime than this are never suspended.
    pub min_remaining: SimDuration,
    /// Periodic checkpoint cadence while running: on a node failure a
    /// checkpointable job loses only the work since its last whole
    /// interval.
    pub interval: SimDuration,
}

impl Default for CheckpointCfg {
    fn default() -> Self {
        CheckpointCfg {
            suspend_threshold_fraction: 1.15,
            resume_threshold_fraction: 1.0,
            checkpoint_overhead: SimDuration::from_mins(5.0),
            restart_overhead: SimDuration::from_mins(3.0),
            min_remaining: SimDuration::from_hours(1.0),
            interval: SimDuration::from_hours(1.0),
        }
    }
}

impl Validate for CheckpointCfg {
    fn validate(&self) -> Result<(), ConfigError> {
        // `+∞` is a legal suspend threshold ("never CI-suspend", used by
        // the E8 failure experiments), so only NaN and negatives are
        // rejected here; `ensure_ordered` enforces the hysteresis.
        for (field, v) in [
            (
                "suspend_threshold_fraction",
                self.suspend_threshold_fraction,
            ),
            ("resume_threshold_fraction", self.resume_threshold_fraction),
        ] {
            if v.is_nan() || v < 0.0 {
                return Err(ConfigError::new(
                    "CheckpointCfg",
                    field,
                    format!("must be >= 0 (NaN rejected), got {v}"),
                ));
            }
        }
        ensure_ordered(
            "CheckpointCfg",
            "resume_threshold_fraction",
            self.resume_threshold_fraction,
            "suspend_threshold_fraction",
            self.suspend_threshold_fraction,
        )?;
        // The periodic-checkpoint cadence divides remaining work.
        ensure_positive("CheckpointCfg", "interval", self.interval.as_secs())
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cluster.
    pub cluster: Cluster,
    /// Queueing policy.
    pub policy: Policy,
    /// Multi-queue admission/priority configuration (§3.4). Jobs that no
    /// queue admits are rejected; admitted jobs inherit their queue's
    /// priority for pending-order. `None` = single FIFO queue.
    pub queues: Option<crate::queue::QueueSet>,
    /// Grid carbon-intensity trace (enables carbon accounting and the
    /// carbon-aware policies).
    pub carbon_trace: Option<CarbonTrace>,
    /// Time-varying total power budget in watts (e.g. produced by a
    /// `ScalingPolicy`); `None` = unlimited.
    pub power_budget: Option<TimeSeries>,
    /// Carbon-aware checkpointing (requires a carbon trace).
    pub checkpoint: Option<CheckpointCfg>,
    /// Fair-share usage-based ordering within queue priorities.
    pub fair_share: Option<FairShareCfg>,
    /// Node-failure injection (None = reliable hardware).
    pub failures: Option<FailureModel>,
    /// Enable malleable reshaping at ticks (§3.2).
    pub enable_malleability: bool,
    /// Wall-time cost a job pays on every reshape (data redistribution,
    /// MPI session reconfiguration). Grow offers are declined when the
    /// remaining work cannot amortize this cost (see [`crate::malleable`]).
    pub reshape_cost: SimDuration,
    /// Tick interval for budget/checkpoint re-evaluation.
    pub tick: SimDuration,
    /// Safety cap on dispatched events.
    pub max_steps: u64,
}

impl SimConfig {
    /// A plain EASY-backfilling setup with no carbon coupling.
    pub fn easy(cluster: Cluster) -> SimConfig {
        SimConfig {
            cluster,
            policy: Policy::EasyBackfill,
            queues: None,
            carbon_trace: None,
            power_budget: None,
            checkpoint: None,
            fair_share: None,
            failures: None,
            enable_malleability: false,
            reshape_cost: SimDuration::from_secs(30.0),
            tick: SimDuration::from_hours(1.0),
            max_steps: 10_000_000,
        }
    }
}

impl Validate for SimConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.cluster.nodes == 0 {
            return Err(ConfigError::new(
                "SimConfig",
                "cluster.nodes",
                "cluster needs at least one node",
            ));
        }
        self.policy.validate().map_err(|e| e.nested("SimConfig"))?;
        self.queues.validate().map_err(|e| e.nested("SimConfig"))?;
        self.checkpoint
            .validate()
            .map_err(|e| e.nested("SimConfig"))?;
        self.fair_share
            .validate()
            .map_err(|e| e.nested("SimConfig"))?;
        self.failures
            .validate()
            .map_err(|e| e.nested("SimConfig"))?;
        if let Some(trace) = &self.carbon_trace {
            if trace.series().values().is_empty() {
                return Err(ConfigError::new(
                    "SimConfig",
                    "carbon_trace",
                    "trace must contain at least one sample",
                ));
            }
            if let Some(bad) = trace.series().values().iter().find(|v| !v.is_finite()) {
                return Err(ConfigError::new(
                    "SimConfig",
                    "carbon_trace",
                    format!("trace contains a non-finite sample ({bad})"),
                ));
            }
        }
        if let Some(budget) = &self.power_budget {
            if let Some(bad) = budget.values().iter().find(|v| !v.is_finite() || **v < 0.0) {
                return Err(ConfigError::new(
                    "SimConfig",
                    "power_budget",
                    format!("budget samples must be finite and >= 0, got {bad}"),
                ));
            }
        }
        // A zero tick would re-fire the periodic event at the same
        // instant until `max_steps` trips.
        ensure_positive("SimConfig", "tick", self.tick.as_secs())?;
        if self.max_steps == 0 {
            return Err(ConfigError::new("SimConfig", "max_steps", "must be >= 1"));
        }
        Ok(())
    }
}

impl CanonicalHash for Policy {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        match self {
            Policy::Fcfs => hasher.write_tag(0),
            Policy::EasyBackfill => hasher.write_tag(1),
            Policy::ConservativeBackfill => hasher.write_tag(2),
            Policy::CarbonAware(cfg) => {
                hasher.write_tag(3);
                cfg.canonical_hash_into(hasher);
            }
        }
    }
}

impl CanonicalHash for CarbonAwareCfg {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_f64(self.green_threshold_fraction);
        self.short_job_cutoff.canonical_hash_into(hasher);
        self.max_delay.canonical_hash_into(hasher);
    }
}

impl CanonicalHash for FailureModel {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        self.node_mtbf.canonical_hash_into(hasher);
        self.mttr.canonical_hash_into(hasher);
        hasher.write_u64(self.seed);
    }
}

impl CanonicalHash for FairShareCfg {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        self.half_life.canonical_hash_into(hasher);
    }
}

impl CanonicalHash for CheckpointCfg {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_f64(self.suspend_threshold_fraction);
        hasher.write_f64(self.resume_threshold_fraction);
        self.checkpoint_overhead.canonical_hash_into(hasher);
        self.restart_overhead.canonical_hash_into(hasher);
        self.min_remaining.canonical_hash_into(hasher);
        self.interval.canonical_hash_into(hasher);
    }
}

impl CanonicalHash for SimConfig {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        self.cluster.canonical_hash_into(hasher);
        self.policy.canonical_hash_into(hasher);
        self.queues.canonical_hash_into(hasher);
        self.carbon_trace.canonical_hash_into(hasher);
        self.power_budget.canonical_hash_into(hasher);
        self.checkpoint.canonical_hash_into(hasher);
        self.fair_share.canonical_hash_into(hasher);
        self.failures.canonical_hash_into(hasher);
        hasher.write_bool(self.enable_malleability);
        self.reshape_cost.canonical_hash_into(hasher);
        self.tick.canonical_hash_into(hasher);
        hasher.write_u64(self.max_steps);
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Submit(usize),
    Finish(JobId),
    Tick,
    NodeRepaired,
}

struct RunJob {
    idx: usize,
    alloc: u32,
    rate: f64,
    work_remaining: f64,
    last_update: SimTime,
    seg_start: SimTime,
    /// Work remaining at the segment start — the rollback point when a
    /// failure strikes a checkpointable job.
    seg_start_work: f64,
    finish_ev: EventId,
}

struct Book {
    start: Option<SimTime>,
    end: Option<SimTime>,
    segments: Vec<Segment>,
    suspensions: u32,
    reshapes: u32,
    restarts: u32,
    rejected: bool,
}

/// Reusable planning buffers owned by the sim (the DESIGN.md §6
/// scratch-buffer audit): the schedule, backfill, conservative-planning
/// and resort passes borrow these instead of allocating per pass, so
/// once they have warmed up to the high-water mark the steady-state
/// tick/schedule path performs no heap allocation. `scratch_grows` in
/// [`HotPathStats`] counts the warm-up growths and is expected to
/// plateau.
#[derive(Default)]
struct Scratch {
    /// Time-sorted (time, ±nodes) availability/reservation profile for
    /// conservative planning.
    events: Vec<(SimTime, i64)>,
    /// Pending-queue snapshot for one conservative pass.
    plan: Vec<usize>,
    /// Time-sorted (time, freed nodes) profile for the EASY shadow.
    frees: Vec<(SimTime, u32)>,
    /// Keyed pending entries for a full fair-share resort (the test
    /// oracle; the production path repositions incrementally).
    keyed: Vec<(std::cmp::Reverse<u32>, f64, SimTime, JobId, usize)>,
    /// Per-user decayed-usage memo for one legacy resort.
    usage_memo: UserMap<f64>,
    /// Speculative earliest-slot results for one conservative planning
    /// round, aligned index-for-index with `plan`. Filled in parallel
    /// against the round's immutable profile snapshot, then consumed by
    /// the ordered commit loop.
    spec: Vec<SimTime>,
}

/// The single pending-order key (see [`Sim::pending_key`]).
type PendKey = (std::cmp::Reverse<u32>, f64, SimTime, JobId);

/// Multiplicative hasher for the u32 user-id key space: one odd-
/// constant multiply instead of SipHash. User-keyed lookups sit on the
/// pending-order hot path (every binary-search probe reads the user's
/// normalized usage), where the default hasher's ~20 ns per probe was
/// measurable. The multiply is bijective mod 2^64, so sequential ids
/// spread over the table; nothing iterates these maps in an order-
/// sensitive way, so the hasher cannot affect outcomes.
#[derive(Default)]
struct UserIdHasher(u64);

impl std::hash::Hasher for UserIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by u32 keys, which hit `write_u32`).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type UserBuildHasher = std::hash::BuildHasherDefault<UserIdHasher>;
type UserMap<V> = std::collections::HashMap<u32, V, UserBuildHasher>;
type UserSet = std::collections::HashSet<u32, UserBuildHasher>;

/// The pending queue: job indices in scheduling order plus a parallel
/// dense array of each entry's (immutable) user id. The user copy is
/// what makes the fair-share dirty scan in [`Sim::fixup_pending`] a
/// sequential `u32` sweep instead of one random `jobs[i]` load per
/// pending entry — on long queues those cache misses dominated the
/// fix-up. Reads deref to the index slice; every mutation goes through
/// a method that keeps the two arrays in lockstep.
#[derive(Default)]
struct PendQueue {
    idx: Vec<usize>,
    /// Parallel dense array of each entry's (immutable) user id,
    /// maintained — like `counts` — only under fair share
    /// (`track_users`): non-fair-share schedulers measurably paid for
    /// the extra copies in the backfill compaction loop.
    user: Vec<u32>,
    /// Pending-entry count per user, maintained only under fair share
    /// (`track_users`). Lets the ordering fix-up know *how many*
    /// entries a dirty user has — zero skips the extraction scan
    /// entirely, and a reached count turns the clean suffix into one
    /// bulk `copy_within` instead of a per-element test.
    counts: UserMap<u32>,
    track_users: bool,
}

impl std::ops::Deref for PendQueue {
    type Target = [usize];
    fn deref(&self) -> &[usize] {
        &self.idx
    }
}

impl PendQueue {
    fn insert(&mut self, pos: usize, idx: usize, user: u32) {
        self.idx.insert(pos, idx);
        if self.track_users {
            self.user.insert(pos, user);
            *self.counts.entry(user).or_insert(0) += 1;
        }
    }

    fn remove(&mut self, pos: usize) -> usize {
        if self.track_users {
            self.uncount(pos);
            self.user.remove(pos);
        }
        self.idx.remove(pos)
    }

    /// Removes the entry for job `idx`, if present (conservative starts
    /// pull jobs from a plan snapshot, not a queue position).
    fn remove_job(&mut self, idx: usize) {
        if let Some(pos) = self.idx.iter().position(|&p| p == idx) {
            self.remove(pos);
        }
    }

    fn drain_front(&mut self, n: usize) {
        if self.track_users {
            for i in 0..n {
                self.uncount(i);
            }
            self.user.drain(..n);
        }
        self.idx.drain(..n);
    }

    /// In-place compaction step: keep the entry at `read` by moving it
    /// to `write` (both arrays when users are tracked). Sits in the
    /// backfill walk's innermost loop — millions of calls per bench
    /// scenario — hence the forced inlining.
    #[inline(always)]
    fn keep(&mut self, write: usize, read: usize) {
        self.idx[write] = self.idx[read];
        if self.track_users {
            self.user[write] = self.user[read];
        }
    }

    /// Drops the entry at `pos` from the per-user counts without
    /// touching the arrays — for compaction loops, which overwrite
    /// non-kept entries implicitly. An entry that leaves the queue must
    /// be uncounted exactly once: an over-count merely costs the fix-up
    /// its early exit, but an under-count would strand a dirty entry.
    fn uncount(&mut self, pos: usize) {
        if self.track_users {
            if let Some(c) = self.counts.get_mut(&self.user[pos]) {
                debug_assert!(*c > 0);
                *c = c.saturating_sub(1);
            } else {
                debug_assert!(false, "uncount for untracked user");
            }
        }
    }

    fn count(&self, user: u32) -> u32 {
        self.counts.get(&user).copied().unwrap_or(0)
    }

    fn truncate(&mut self, n: usize) {
        self.idx.truncate(n);
        if self.track_users {
            self.user.truncate(n);
        }
    }
}

/// Total order on pending keys: queue priority (desc, via `Reverse`),
/// normalized fair-share usage (asc), submit time, then id. Ids are
/// unique, so the order is total and stable/unstable sorts agree.
fn pend_key_cmp(a: &PendKey, b: &PendKey) -> std::cmp::Ordering {
    a.0.cmp(&b.0)
        .then_with(|| a.1.total_cmp(&b.1))
        .then_with(|| a.2.cmp(&b.2))
        .then_with(|| a.3.cmp(&b.3))
}

/// Inserts into a time-sorted profile at the upper bound of its time
/// key. Sequential upper-bound inserts reproduce exactly the order that
/// "append everything, then stable-sort by time" used to produce, while
/// staying allocation-free (within capacity).
fn sorted_insert<T>(v: &mut Vec<(SimTime, T)>, item: (SimTime, T)) {
    let pos = v.partition_point(|e| e.0 <= item.0);
    v.insert(pos, item);
}

/// Default pending-queue length below which a conservative planning
/// round skips the speculative parallel phase: snapshot fan-out has a
/// fixed cost (scoped worker threads per round), so sub-second scenarios
/// with short queues should not pay it.
const PAR_PENDING_MIN_DEFAULT: usize = 64;

static PAR_PENDING_MIN: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(PAR_PENDING_MIN_DEFAULT);
static PAR_PENDING_MIN_INIT: std::sync::Once = std::sync::Once::new();

/// Environment variable overriding the speculative-planning threshold
/// (see [`par_pending_min`]).
pub const PAR_PENDING_MIN_ENV: &str = "SUSTAIN_PAR_PENDING_MIN";

/// Strictly applies [`PAR_PENDING_MIN_ENV`] if set; returns the applied
/// threshold. Boundary code (CLI/service startup) calls this once so a
/// malformed value becomes a typed error instead of a silently-used
/// default; an explicit [`set_par_pending_min`] afterwards still wins.
pub fn init_par_pending_min_from_env() -> Result<Option<usize>, ConfigError> {
    let parsed = env_knob_usize(PAR_PENDING_MIN_ENV)?;
    if let Some(v) = parsed {
        set_par_pending_min(v);
    } else {
        // Mark resolution done so the lazy path cannot re-read (and
        // re-warn about) the environment later in the process lifetime.
        PAR_PENDING_MIN_INIT.call_once(|| {});
    }
    Ok(parsed)
}

/// Minimum pending-queue length for the speculative parallel planning
/// phase. Resolved once from [`PAR_PENDING_MIN_ENV`] (falling back to
/// 64) unless [`set_par_pending_min`] or
/// [`init_par_pending_min_from_env`] ran first. The knob only trades
/// setup cost against parallelism — outcomes are byte-identical at
/// every value and every thread count.
///
/// This lazy path is reached from deep inside the simulator, so a
/// malformed value cannot surface as a `Result`; it warns loudly on
/// stderr (once) and keeps the default rather than silently ignoring
/// the knob. Boundary code gets the typed-error behavior by calling
/// [`init_par_pending_min_from_env`] at startup.
pub fn par_pending_min() -> usize {
    PAR_PENDING_MIN_INIT.call_once(|| match env_knob_usize(PAR_PENDING_MIN_ENV) {
        Ok(Some(v)) => PAR_PENDING_MIN.store(v, std::sync::atomic::Ordering::Relaxed),
        Ok(None) => {}
        Err(e) => eprintln!(
            "warning: {e}; keeping the default speculative-planning \
             threshold of {PAR_PENDING_MIN_DEFAULT}"
        ),
    });
    PAR_PENDING_MIN.load(std::sync::atomic::Ordering::Relaxed)
}

/// Overrides the speculative-planning queue-length threshold for the
/// whole process (0 = always speculate when workers are available,
/// `usize::MAX` = never). Takes precedence over the environment.
pub fn set_par_pending_min(n: usize) {
    PAR_PENDING_MIN_INIT.call_once(|| {});
    PAR_PENDING_MIN.store(n, std::sync::atomic::Ordering::Relaxed);
}

/// When set, every scheduling pass rebuilds and fully sorts the pending
/// queue (the pre-incremental reference behavior) instead of
/// repositioning only dirty users' jobs. Outcomes are byte-identical in
/// both modes — that is exactly what the oracle tests assert — so the
/// toggle only trades speed for an independent ordering path.
static FS_ORACLE_RESORT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Enables/disables the full-resort fair-share oracle for the whole
/// process. Test-only in spirit, but always compiled so integration
/// tests and the golden replayer (which live outside this crate's
/// `#[cfg(test)]`) can drive it.
#[doc(hidden)]
pub fn set_fair_share_oracle_resort(on: bool) {
    FS_ORACLE_RESORT.store(on, std::sync::atomic::Ordering::Relaxed);
}

fn fair_share_oracle_resort() -> bool {
    FS_ORACLE_RESORT.load(std::sync::atomic::Ordering::Relaxed)
}

/// Renormalization threshold for the fair-share usage epoch, in
/// half-lives. Normalized usage grows by `2^(t / half_life - shift)`;
/// once that exponent would exceed this bound at a recording,
/// [`Sim::record_usage`] rescales every stored value by an exact power
/// of two and advances the shift. 512 keeps `exp2(e) ≤ 2^512 ≈ 1.3e154`,
/// far from f64 overflow (~1.8e308) even after multiplying by
/// node-seconds, while renormalizing rarely enough to never matter for
/// performance (`fs_renorms` counts occurrences).
const FS_RENORM_HALF_LIVES: f64 = 512.0;

/// Binary exponent below which a decayed fair-share usage is treated as
/// dangerously close to the subnormal range (f64 subnormals start at
/// 2^-1022). Once any user's decayed value sinks past `2^-1000`,
/// ordering switches — stickily — to the legacy per-read `powf` keys:
/// in the subnormal range the legacy values round so coarsely that
/// comparing full-precision normalized values no longer reproduces
/// their order, and the golden snapshots pin the legacy bits. The
/// 22-half-life margin keeps the switch strictly inside the regime
/// where both keys still agree. Reaching it at all takes a thousand
/// half-lives of drain (centuries of simulated idle at realistic
/// half-lives) — no benchmark scenario comes within an order of
/// magnitude of it.
const FS_DEGRADE_MIN_EXP: f64 = -1000.0;

/// Exact feasibility check of the window `[start, start + dur)` against
/// a time-sorted strictly-future profile: the same prefix fold and
/// window scan [`earliest_slot_sorted`] performs for one candidate,
/// factored out so the commit loop can re-verify a speculative slot
/// against the *live* profile.
///
/// Why verification is enough for byte-identity (DESIGN.md §6): within
/// one planning round, commits only ever *shrink* availability — each
/// reservation subtracts nodes from `free_now` or inserts a
/// `(start, -alloc)` event whose matching `(end, +alloc)` restores what
/// it took, never more — so the live profile is pointwise ≤ the round's
/// snapshot. A speculative slot that is still feasible live therefore
/// has no earlier feasible start (an earlier live window would have been
/// an earlier snapshot window, contradicting "earliest on snapshot"),
/// i.e. it *is* the serial planner's answer. Infeasible slots are
/// recomputed serially, which is exactly what the serial planner does.
fn window_feasible(
    free_now: i64,
    evs: &[(SimTime, i64)],
    start: SimTime,
    alloc: i64,
    dur: SimDuration,
) -> bool {
    let mut free = free_now;
    let mut consumed = 0usize;
    while consumed < evs.len() && evs[consumed].0 <= start {
        free += evs[consumed].1;
        consumed += 1;
    }
    if free < alloc {
        return false;
    }
    let t_end = start + dur;
    for e in &evs[consumed..] {
        if e.0 >= t_end {
            break;
        }
        free += e.1;
        if free < alloc {
            return false;
        }
    }
    true
}

struct Sim<'a> {
    jobs: &'a [Job],
    cfg: &'a SimConfig,
    queue: EventQueue<Ev>,
    alloc: Allocation,
    pending: PendQueue,
    priorities: Vec<u32>,
    running: Vec<RunJob>,
    suspended: Vec<(usize, f64)>, // (job idx, work_remaining)
    books: Vec<Book>,
    running_power: Power,
    submitted: usize,
    completed: usize,
    rejected: usize,
    trace_mean: f64,
    // Continuous accounting.
    last_account: SimTime,
    idle_energy: Energy,
    idle_carbon: Carbon,
    violation_seconds: f64,
    tick_scheduled: bool,
    failure_rng: Option<sustain_sim_core::rng::RngStream>,
    total_failures: u32,
    /// Largest budget the series ever offers (jobs that cannot fit even
    /// this are rejected at submit rather than pending forever).
    max_budget: Option<Power>,
    /// Set at the end of every completed scheduling pass (a pass runs to
    /// fixpoint: nothing more can start *now*); cleared by any mutation
    /// that could enable a start. While set, `try_schedule` is a no-op
    /// under the guards proven in [`Sim::can_skip_schedule`].
    quiescent: bool,
    /// Budget value observed when the last pass went quiescent.
    quiescent_budget: Option<Power>,
    /// `resume_allowed` observed when the last pass went quiescent.
    quiescent_resume_ok: bool,
    /// Cached current carbon bucket: (valid_from, valid_to, g/kWh).
    ci_cache: Cell<Option<(SimTime, SimTime, f64)>>,
    /// Cached current budget bucket: (valid_from, valid_to, watts).
    budget_cache: Cell<Option<(SimTime, SimTime, f64)>>,
    /// CI/budget lookups served from the cached bucket (interior
    /// mutability: the lookups happen behind `&self`).
    trace_hits: Cell<u64>,
    /// CI/budget lookups that crossed a bucket boundary.
    trace_misses: Cell<u64>,
    /// Remaining hot-path counters for this run.
    stats: HotPathStats,
    // Per-user *normalized* fair-share usage: the decayed node-seconds
    // value scaled by `2^(t_rec / half_life - fs_shift)` at recording
    // time. Uniform decay multiplies every user's usage by the same
    // factor, so normalized values compare exactly like decayed ones —
    // without a per-read `powf` (see DESIGN.md §6).
    fs_usage: UserMap<f64>,
    // Integer count of half-lives subtracted from the normalization
    // exponent so far (exact in f64 far beyond any reachable value).
    fs_shift: f64,
    // Users whose usage changed since the last ordering fix-up; only
    // their pending jobs can be out of place.
    fs_dirty: UserSet,
    // The legacy representation the pre-incremental code kept: per-user
    // (decayed node-seconds, last decay time), chained through one
    // `powf` per recording. Maintained alongside the normalized map —
    // one powf per *recording* is cheap; it is the per-*read* powf the
    // normalized key eliminates — so the legacy-key regime below can
    // reproduce the reference behavior bit for bit.
    fs_legacy: UserMap<(f64, SimTime)>,
    // Conservative lower bound on the positive normalized usages (stale
    // entries may since have grown, so the bound only errs low, which
    // only makes the legacy switch trigger earlier — always safe).
    fs_min_nu: f64,
    // Sticky switch into the legacy-key regime: set once any user's
    // decayed usage approaches the subnormal range, where the legacy
    // `powf` values lose the precision that makes them order-equivalent
    // to the normalized key (see DESIGN.md §6). From then on ordering
    // uses per-read legacy keys, exactly like the reference code.
    fs_legacy_keys: bool,
    /// Set by a legacy resort that found every pending user's decayed
    /// usage to be exactly `0.0`. Zero is absorbing — decay only
    /// multiplies by a factor in `[0, 1]` — so from that moment the
    /// legacy key is time-invariant and the pending order frozen, which
    /// is what lets [`Sim::can_skip_schedule`] skip again after the
    /// legacy switch. Cleared by usage recordings and by inserts
    /// carrying nonzero usage.
    usage_all_zero: bool,
    /// Reusable planning buffers.
    scratch: Scratch,
}

impl<'a> Sim<'a> {
    fn new(jobs: &'a [Job], cfg: &'a SimConfig) -> Self {
        let trace_mean = cfg
            .carbon_trace
            .as_ref()
            .map(|t| t.series().stats().mean())
            .unwrap_or(0.0);
        Sim {
            jobs,
            cfg,
            queue: EventQueue::with_capacity(jobs.len() * 2 + 16),
            alloc: Allocation::new(cfg.cluster.nodes),
            pending: PendQueue {
                track_users: cfg.fair_share.is_some(),
                ..PendQueue::default()
            },
            priorities: vec![0; jobs.len()],
            fs_usage: UserMap::default(),
            fs_shift: 0.0,
            fs_dirty: UserSet::default(),
            fs_legacy: UserMap::default(),
            fs_min_nu: f64::INFINITY,
            fs_legacy_keys: false,
            usage_all_zero: false,
            running: Vec::new(),
            suspended: Vec::new(),
            books: jobs
                .iter()
                .map(|_| Book {
                    start: None,
                    end: None,
                    segments: Vec::new(),
                    suspensions: 0,
                    reshapes: 0,
                    restarts: 0,
                    rejected: false,
                })
                .collect(),
            running_power: Power::ZERO,
            submitted: 0,
            completed: 0,
            rejected: 0,
            trace_mean,
            last_account: SimTime::ZERO,
            idle_energy: Energy::ZERO,
            idle_carbon: Carbon::ZERO,
            violation_seconds: 0.0,
            tick_scheduled: false,
            failure_rng: cfg
                .failures
                .as_ref()
                .map(|f| sustain_sim_core::rng::RngStream::new(f.seed)),
            total_failures: 0,
            max_budget: cfg
                .power_budget
                .as_ref()
                .map(|b| Power::from_watts(b.values().iter().copied().fold(0.0, f64::max))),
            quiescent: false,
            quiescent_budget: None,
            quiescent_resume_ok: true,
            ci_cache: Cell::new(None),
            budget_cache: Cell::new(None),
            trace_hits: Cell::new(0),
            trace_misses: Cell::new(0),
            stats: HotPathStats::default(),
            scratch: Scratch::default(),
        }
    }

    /// Exponent of the normalization factor at `t`: how many half-lives
    /// `t` sits past the current epoch. A value recorded at `t` enters
    /// the map as `node_seconds × 2^e(t)`; dividing two users' stored
    /// values cancels the common factor, so comparing them IS comparing
    /// decayed usage — no per-read `powf`.
    fn fs_exponent(&self, t: SimTime) -> f64 {
        // Only called with fair share enabled; the identity exponent is
        // a harmless answer for the unreachable disabled case.
        let Some(cfg) = self.cfg.fair_share.as_ref() else {
            return 0.0;
        };
        t.as_secs() / cfg.half_life.as_secs() - self.fs_shift
    }

    /// Normalized usage of a user (identically 0.0 when fair share is
    /// off: the map stays empty).
    fn norm_usage(&self, user: u32) -> f64 {
        self.fs_usage.get(&user).copied().unwrap_or(0.0)
    }

    /// Records usage for a user at `now`, in both representations. The
    /// only operation that can change *relative* fair-share order:
    /// decay between recordings scales every user's usage by the same
    /// factor, preserving order, so only the recorded user goes dirty.
    fn record_usage(&mut self, user: u32, node_seconds: f64, now: SimTime) {
        if self.cfg.fair_share.is_none() {
            return;
        }
        // The legacy representation: decay-to-now, then add. One `powf`
        // per recording, exactly as the reference code chained them.
        let decayed = self.legacy_usage(user, now);
        self.fs_legacy.insert(user, (decayed + node_seconds, now));
        self.fs_dirty.insert(user);
        self.usage_all_zero = false;
        self.quiescent = false;
        let mut e = self.fs_exponent(now);
        if e > FS_RENORM_HALF_LIVES {
            self.fs_renormalize(e);
            e = self.fs_exponent(now);
        }
        let nu = self.fs_usage.entry(user).or_insert(0.0);
        *nu += node_seconds * f64::exp2(e);
        self.fs_min_nu = self.fs_min_nu.min(*nu);
    }

    /// Decayed usage of a user at `now` under the legacy representation
    /// (node-seconds, half-life decay, per-read `powf`).
    fn legacy_usage(&self, user: u32, now: SimTime) -> f64 {
        let Some(cfg) = &self.cfg.fair_share else {
            return 0.0;
        };
        match self.fs_legacy.get(&user) {
            Some(&(value, at)) => {
                let dt = now.saturating_since(at).as_secs();
                value * 0.5f64.powf(dt / cfg.half_life.as_secs())
            }
            None => 0.0,
        }
    }

    /// Whether ordering must switch to legacy keys at `now`: true once
    /// the smallest positive normalized usage corresponds to a decayed
    /// value within [`FS_DEGRADE_MARGIN_HALF_LIVES`] half-lives of the
    /// subnormal range. Below that, the legacy values' own rounding —
    /// which the goldens pin — is no longer reproduced by comparing
    /// normalized values at full precision. Evaluated in log space so
    /// the probe itself cannot underflow.
    fn fs_should_degrade(&self, now: SimTime) -> bool {
        if self.fs_min_nu == f64::INFINITY {
            return false;
        }
        self.fs_min_nu.log2() - self.fs_exponent(now) < FS_DEGRADE_MIN_EXP
    }

    /// Advances the normalization epoch by `⌊e⌋` half-lives, rescaling
    /// every stored value by the exact power of two `2^-⌊e⌋`. The
    /// rescale is exact (power-of-two multiply) unless a value
    /// underflows toward subnormal range — and a subnormal collapse can
    /// merge previously-distinct usages into a tie, so every pending
    /// user is marked dirty and the next fix-up restores full sorted
    /// order under the rescaled keys. Underflow all the way to `0.0`
    /// mirrors the old `powf` path, which also underflowed after
    /// ~1000 half-lives of decay.
    fn fs_renormalize(&mut self, e: f64) {
        let k = e.floor();
        let scale = f64::exp2(-k);
        for v in self.fs_usage.values_mut() {
            *v *= scale;
        }
        self.fs_shift += k;
        self.stats.fs_renorms += 1;
        for &u in &self.pending.user {
            self.fs_dirty.insert(u);
        }
        // The bound rescales exactly like the values, but recompute it
        // from scratch: entries that grew since the bound was taken make
        // the stale bound pessimistic, and underflowed-to-zero entries
        // must drop out (zero has no legacy precision left to protect —
        // by the time a *renorm* can underflow a value, the legacy
        // switch below has long since fired for it).
        self.fs_min_nu = self
            .fs_usage
            .values()
            .copied()
            .filter(|&v| v > 0.0)
            .fold(f64::INFINITY, f64::min);
    }

    /// THE pending-order key — the one definition the sorted insert,
    /// the incremental fix-up and the full-resort oracle all use: queue
    /// priority (desc), normalized fair-share usage (asc; identically
    /// 0.0 when fair share is off), submit time, then id. The id makes
    /// the key unique, so sorted-insert and full-sort produce the same
    /// total order. Time-invariant between usage recordings — the key
    /// needs no `now`.
    fn pending_key(&self, i: usize) -> PendKey {
        (
            std::cmp::Reverse(self.priorities[i]),
            self.norm_usage(self.jobs[i].user),
            self.jobs[i].submit,
            self.jobs[i].id,
        )
    }

    /// Restores pending order after usage recordings: repositions only
    /// the dirty users' jobs (remove + sorted re-insert, O(k log n))
    /// instead of rebuilding and sorting the whole queue. Keys are
    /// unique and the clean entries are already in order, so the result
    /// equals a full sort exactly — [`Sim::resort_pending_full`] is the
    /// always-compiled oracle asserting that. A pass with no recordings
    /// since the last fix-up has provably unchanged order (the key is
    /// time-invariant) and skips outright — the gate the old
    /// timestamp-keyed skip could never hit under load.
    ///
    /// Once decayed usage approaches the subnormal range the whole
    /// ordering switches — stickily — to [`Sim::resort_pending_legacy`],
    /// which reproduces the reference `powf`-per-read behavior (see
    /// [`FS_DEGRADE_MIN_EXP`]).
    #[inline]
    fn fixup_pending(&mut self, now: SimTime) {
        if self.cfg.fair_share.is_none() {
            return;
        }
        self.fixup_pending_fs(now);
    }

    /// The fair-share-only body of [`Sim::fixup_pending`], outlined so
    /// the (large) extraction-and-merge machinery never inlines into —
    /// and pessimizes register allocation across — `schedule_pass`,
    /// which non-fair-share configs drive through the same call site.
    #[inline(never)]
    fn fixup_pending_fs(&mut self, now: SimTime) {
        if !self.fs_legacy_keys && self.fs_should_degrade(now) {
            self.fs_legacy_keys = true;
        }
        if self.fs_legacy_keys {
            self.resort_pending_legacy(now);
            return;
        }
        if fair_share_oracle_resort() {
            self.resort_pending_full();
            return;
        }
        if self.fs_dirty.is_empty() {
            self.stats.resorts_skipped += 1;
            return;
        }
        if self.pending.len() < 2 {
            self.fs_dirty.clear();
            return;
        }
        // The per-user counts bound the extraction: no pending work for
        // any dirty user means the order is provably unchanged, without
        // touching the queue at all.
        let k: usize = self
            .fs_dirty
            .iter()
            .map(|&u| self.pending.count(u) as usize)
            .sum();
        if k == 0 {
            self.fs_dirty.clear();
            self.stats.resorts_skipped += 1;
            return;
        }
        // Extract the dirty users' entries (with their new keys) in one
        // lockstep compaction over the queue's dense user array — no
        // random `jobs[i]` loads for the clean majority. The dirty set
        // is almost always a single user (one completion, one recording,
        // one fix-up), so it is tested from a small stack copy instead
        // of hashing every element. The compaction itself is three
        // phases: scan the untouched clean prefix without copies, test-
        // and-compact until all `k` counted entries are found, then
        // bulk-move the clean suffix.
        let mut moved = std::mem::take(&mut self.scratch.keyed);
        let cap = moved.capacity();
        moved.clear();
        let mut q = std::mem::take(&mut self.pending);
        let mut small = [0u32; 8];
        let nd = self.fs_dirty.len();
        let use_small = nd <= small.len();
        if use_small {
            for (s, &u) in small.iter_mut().zip(self.fs_dirty.iter()) {
                *s = u;
            }
        }
        let is_dirty = |fsd: &UserSet, u: u32| {
            if use_small {
                small[..nd].contains(&u)
            } else {
                fsd.contains(&u)
            }
        };
        let n = q.idx.len();
        // Phase 1: clean prefix — pure scan, no copies.
        let mut read = 0;
        while read < n && !is_dirty(&self.fs_dirty, q.user[read]) {
            read += 1;
        }
        // Phase 2: compact until every counted dirty entry is out.
        let mut write = read;
        while read < n && moved.len() < k {
            let u = q.user[read];
            if is_dirty(&self.fs_dirty, u) {
                let i = q.idx[read];
                moved.push((
                    std::cmp::Reverse(self.priorities[i]),
                    self.norm_usage(u),
                    self.jobs[i].submit,
                    self.jobs[i].id,
                    i,
                ));
            } else {
                q.keep(write, read);
                write += 1;
            }
            read += 1;
        }
        debug_assert_eq!(moved.len(), k);
        // Phase 3: clean suffix — one bulk move per array.
        if read < n {
            q.idx.copy_within(read..n, write);
            q.user.copy_within(read..n, write);
            write += n - read;
        }
        q.truncate(write);
        self.fs_dirty.clear();
        if moved.is_empty() {
            // The recorded users had nothing pending: order unchanged.
            self.pending = q;
            self.stats.resorts_skipped += 1;
            self.scratch.keyed = moved;
            return;
        }
        moved.sort_unstable_by(|a, b| pend_key_cmp(&(a.0, a.1, a.2, a.3), &(b.0, b.1, b.2, b.3)));
        // Block merge of the two sorted runs, from the back: each moved
        // entry's insertion point is found by binary search (O(k log n)
        // key evaluations total) and the clean entries between two
        // insertion points shift as one `copy_within` block — no per-
        // element key reads, unlike a classic two-finger merge. Keys are
        // unique, so the result is the one total order a full sort
        // would produce.
        let clean = write;
        let total = clean + moved.len();
        q.idx.resize(total, usize::MAX);
        q.user.resize(total, 0);
        let mut src = clean; // clean entries still at [0..src)
        let mut dst = total; // everything at [dst..total) is placed
        for j in (0..moved.len()).rev() {
            let m = &moved[j];
            let mk = (m.0, m.1, m.2, m.3);
            // First clean position whose key exceeds the moved key —
            // keys are unique, so "not Greater" is exactly "Less".
            let pos = q.idx[..src].partition_point(|&p| {
                pend_key_cmp(&self.pending_key(p), &mk) != std::cmp::Ordering::Greater
            });
            let len = src - pos;
            if len > 0 {
                q.idx.copy_within(pos..src, dst - len);
                q.user.copy_within(pos..src, dst - len);
                dst -= len;
            }
            dst -= 1;
            q.idx[dst] = m.4;
            q.user[dst] = self.jobs[m.4].user;
            src = pos;
        }
        debug_assert_eq!(src, dst);
        self.pending = q;
        self.stats.fs_repositions += moved.len() as u64;
        if moved.capacity() != cap {
            self.stats.scratch_grows += 1;
        }
        self.scratch.keyed = moved;
    }

    /// The pre-incremental reference: rebuild and fully sort the
    /// pending queue by [`Sim::pending_key`]. Runs on *every* pass in
    /// oracle mode (so a latently unsorted queue cannot hide behind a
    /// clean dirty set), allocation-free via the scratch buffer.
    fn resort_pending_full(&mut self) {
        self.fs_dirty.clear();
        if self.pending.len() < 2 {
            return;
        }
        self.stats.resorts_taken += 1;
        let mut keyed = std::mem::take(&mut self.scratch.keyed);
        let cap = keyed.capacity();
        keyed.clear();
        for &i in self.pending.iter() {
            keyed.push((
                std::cmp::Reverse(self.priorities[i]),
                self.norm_usage(self.jobs[i].user),
                self.jobs[i].submit,
                self.jobs[i].id,
                i,
            ));
        }
        // Unique ids make the order total: unstable sort is exact and,
        // unlike the stable sort, allocation-free.
        keyed.sort_unstable_by(|a, b| pend_key_cmp(&(a.0, a.1, a.2, a.3), &(b.0, b.1, b.2, b.3)));
        let jobs = self.jobs;
        self.pending.idx.clear();
        self.pending.idx.extend(keyed.iter().map(|k| k.4));
        self.pending.user.clear();
        self.pending
            .user
            .extend(keyed.iter().map(|k| jobs[k.4].user));
        if keyed.capacity() != cap {
            self.stats.scratch_grows += 1;
        }
        self.scratch.keyed = keyed;
    }

    /// The reference resort, bit for bit: rebuild and fully sort the
    /// pending queue under per-read legacy `powf` keys at `now`,
    /// memoizing the decay per user. Runs on every pass once the legacy
    /// switch has fired; also maintains `usage_all_zero`, the absorbing
    /// state that lets [`Sim::can_skip_schedule`] skip again after
    /// every usage has underflowed to exactly zero.
    fn resort_pending_legacy(&mut self, now: SimTime) {
        self.fs_dirty.clear();
        if self.pending.len() < 2 {
            return;
        }
        self.stats.resorts_taken += 1;
        let mut keyed = std::mem::take(&mut self.scratch.keyed);
        let mut memo = std::mem::take(&mut self.scratch.usage_memo);
        let caps = (keyed.capacity(), memo.capacity());
        keyed.clear();
        memo.clear();
        for &i in self.pending.iter() {
            let user = self.jobs[i].user;
            let usage = *memo
                .entry(user)
                .or_insert_with(|| self.legacy_usage(user, now));
            keyed.push((
                std::cmp::Reverse(self.priorities[i]),
                usage,
                self.jobs[i].submit,
                self.jobs[i].id,
                i,
            ));
        }
        keyed.sort_unstable_by(|a, b| pend_key_cmp(&(a.0, a.1, a.2, a.3), &(b.0, b.1, b.2, b.3)));
        self.usage_all_zero = memo.values().all(|&v| v == 0.0);
        let jobs = self.jobs;
        self.pending.idx.clear();
        self.pending.idx.extend(keyed.iter().map(|k| k.4));
        self.pending.user.clear();
        self.pending
            .user
            .extend(keyed.iter().map(|k| jobs[k.4].user));
        if (keyed.capacity(), memo.capacity()) != caps {
            self.stats.scratch_grows += 1;
        }
        self.scratch.keyed = keyed;
        self.scratch.usage_memo = memo;
    }

    /// Legacy-regime pending key at `now` (per-read `powf`).
    fn pending_key_legacy(&self, i: usize, now: SimTime) -> PendKey {
        (
            std::cmp::Reverse(self.priorities[i]),
            self.legacy_usage(self.jobs[i].user, now),
            self.jobs[i].submit,
            self.jobs[i].id,
        )
    }

    /// Sorted insert by [`Sim::pending_key`] — the same key the fix-up
    /// and the oracle use, so the list is in final order immediately.
    /// O(log n) key evaluations along the binary search path,
    /// allocation-free; the normalized key is time-invariant, so `now`
    /// only matters in the legacy regime (where the insert replays the
    /// reference per-read `powf` keys, and a nonzero usage un-freezes
    /// the absorbed all-zero state).
    fn pending_insert(&mut self, idx: usize, now: SimTime) {
        self.quiescent = false;
        // The binary search probes *live* keys, so it requires the queue
        // to be fully sorted under them — i.e. no usage recording may be
        // outstanding. That holds structurally: `record_usage` only runs
        // from `finish_job`, and every Finish event is followed by a
        // `try_schedule` whose pass (never skippable — the finish
        // cleared `quiescent`) fixes the order before the next event can
        // insert.
        debug_assert!(self.fs_dirty.is_empty());
        if self.cfg.fair_share.is_some() && !self.fs_legacy_keys && self.fs_should_degrade(now) {
            self.fs_legacy_keys = true;
        }
        let user = self.jobs[idx].user;
        if self.fs_legacy_keys {
            let key = self.pending_key_legacy(idx, now);
            if key.1 != 0.0 {
                self.usage_all_zero = false;
            }
            let pos = self.pending.partition_point(|&p| {
                pend_key_cmp(&self.pending_key_legacy(p, now), &key) != std::cmp::Ordering::Greater
            });
            self.pending.insert(pos, idx, user);
            return;
        }
        let key = self.pending_key(idx);
        let pos = self.pending.partition_point(|&p| {
            pend_key_cmp(&self.pending_key(p), &key) != std::cmp::Ordering::Greater
        });
        self.pending.insert(pos, idx, user);
    }

    /// Budget lookup hoisted to bucket granularity: the value is cached
    /// together with its validity window, so the (many) lookups inside
    /// one bucket — every tick, accounting step and start attempt — pay
    /// one comparison instead of a series index computation.
    fn budget_at(&self, t: SimTime) -> Option<Power> {
        let series = self.cfg.power_budget.as_ref()?;
        if let Some((from, to, w)) = self.budget_cache.get() {
            if t >= from && t < to {
                self.trace_hits.set(self.trace_hits.get() + 1);
                return Some(Power::from_watts(w));
            }
        }
        self.trace_misses.set(self.trace_misses.get() + 1);
        let w = series.at(t);
        self.budget_cache
            .set(Some((t, series.next_boundary_after(t), w)));
        Some(Power::from_watts(w))
    }

    /// Carbon-intensity lookup with the same bucket-granularity cache as
    /// [`Sim::budget_at`].
    fn ci_at(&self, t: SimTime) -> Option<f64> {
        let trace = self.cfg.carbon_trace.as_ref()?;
        if let Some((from, to, ci)) = self.ci_cache.get() {
            if t >= from && t < to {
                self.trace_hits.set(self.trace_hits.get() + 1);
                return Some(ci);
            }
        }
        self.trace_misses.set(self.trace_misses.get() + 1);
        let ci = trace.at(t).grams_per_kwh();
        self.ci_cache.set(Some((t, trace.bucket_end_after(t), ci)));
        Some(ci)
    }

    /// Accumulates idle energy/carbon and budget-violation time since the
    /// last accounting point. Must be called before any state change.
    fn account(&mut self, now: SimTime) {
        if now <= self.last_account {
            return;
        }
        let window = now - self.last_account;
        let idle_power = self.cfg.cluster.idle_node_power * self.alloc.free() as f64;
        let e = idle_power.for_duration(window);
        self.idle_energy += e;
        if let Some(trace) = &self.cfg.carbon_trace {
            self.idle_carbon += e.carbon_at(trace.mean_over(self.last_account, now));
        }
        if let Some(budget) = self.budget_at(self.last_account) {
            if self.running_power > budget * 1.000001 {
                self.violation_seconds += window.as_secs();
            }
        }
        self.last_account = now;
    }

    /// Chooses the allocation for a start attempt, or `None` if the job
    /// cannot start now.
    #[inline]
    fn choose_alloc(&self, idx: usize, now: SimTime) -> Option<u32> {
        let job = &self.jobs[idx];
        let (min, max) = job.bounds();
        let desired = job.requested_nodes.clamp(min, max);
        let mut alloc = desired.min(self.alloc.free());
        if let Some(budget) = self.budget_at(now) {
            let headroom = budget - self.running_power;
            if headroom <= Power::ZERO {
                return None;
            }
            let power_fit = (headroom.watts() / job.power_per_node.watts().max(1e-9)) as u32;
            alloc = alloc.min(power_fit);
        }
        if alloc >= min && alloc > 0 {
            Some(alloc)
        } else {
            None
        }
    }

    fn start_job(&mut self, idx: usize, alloc: u32, work_remaining: f64, now: SimTime) {
        self.quiescent = false;
        let job = &self.jobs[idx];
        self.alloc.claim(alloc);
        self.running_power += job.power_at(alloc);
        let rate = job.speedup.speedup(alloc.min(job.efficient_nodes).max(1));
        let finish_at = now + SimDuration::from_secs(work_remaining / rate);
        let finish_ev = self.queue.schedule(finish_at, Ev::Finish(job.id));
        let book = &mut self.books[idx];
        if book.start.is_none() {
            book.start = Some(now);
        }
        self.running.push(RunJob {
            idx,
            alloc,
            rate,
            work_remaining,
            last_update: now,
            seg_start: now,
            seg_start_work: work_remaining,
            finish_ev,
        });
    }

    /// Updates a running job's remaining work to `now`.
    fn progress(run: &mut RunJob, now: SimTime) {
        let elapsed = (now - run.last_update).as_secs();
        run.work_remaining = (run.work_remaining - elapsed * run.rate).max(0.0);
        run.last_update = now;
    }

    fn close_segment(&mut self, pos: usize, now: SimTime) {
        let run = &self.running[pos];
        let job = &self.jobs[run.idx];
        if now > run.seg_start {
            self.books[run.idx].segments.push(Segment {
                start: run.seg_start,
                end: now,
                nodes: run.alloc,
                power: job.power_at(run.alloc),
            });
        }
    }

    fn finish_job(&mut self, id: JobId, now: SimTime) {
        let Some(pos) = self.running.iter().position(|r| self.jobs[r.idx].id == id) else {
            return; // stale event (job was suspended/reshaped; event cancelled)
        };
        self.quiescent = false;
        self.close_segment(pos, now);
        let run = self.running.remove(pos);
        let job = &self.jobs[run.idx];
        self.alloc.release(run.alloc);
        self.running_power -= job.power_at(run.alloc);
        self.books[run.idx].end = Some(now);
        self.completed += 1;
        let user = job.user;
        let node_seconds: f64 = self.books[run.idx]
            .segments
            .iter()
            .map(|s| s.node_seconds())
            .sum();
        self.record_usage(user, node_seconds, now);
    }

    /// Reshapes a running job to a new allocation (malleability, §3.2).
    fn reshape(&mut self, pos: usize, new_alloc: u32, now: SimTime) {
        self.quiescent = false;
        Self::progress(&mut self.running[pos], now);
        self.close_segment(pos, now);
        let run = &mut self.running[pos];
        let job = &self.jobs[run.idx];
        let old = run.alloc;
        if new_alloc > old {
            self.alloc.claim(new_alloc - old);
        } else {
            self.alloc.release(old - new_alloc);
        }
        self.running_power -= job.power_at(old);
        self.running_power += job.power_at(new_alloc);
        run.alloc = new_alloc;
        run.rate = job
            .speedup
            .speedup(new_alloc.min(job.efficient_nodes).max(1));
        run.seg_start = now;
        // The reshape itself costs wall time at the new rate.
        run.work_remaining += self.cfg.reshape_cost.as_secs() * run.rate;
        run.seg_start_work = run.work_remaining;
        self.queue.cancel(run.finish_ev);
        let finish_at = now + SimDuration::from_secs(run.work_remaining / run.rate);
        run.finish_ev = self.queue.schedule(finish_at, Ev::Finish(job.id));
        self.books[run.idx].reshapes += 1;
    }

    /// Suspends a running checkpointable job (§3.3): pays the checkpoint
    /// overhead, frees its nodes.
    fn suspend(&mut self, pos: usize, now: SimTime) {
        self.quiescent = false;
        Self::progress(&mut self.running[pos], now);
        self.close_segment(pos, now);
        let run = self.running.remove(pos);
        let job = &self.jobs[run.idx];
        self.alloc.release(run.alloc);
        self.running_power -= job.power_at(run.alloc);
        self.queue.cancel(run.finish_ev);
        let overhead = self
            .cfg
            .checkpoint
            .as_ref()
            .map(|c| c.checkpoint_overhead.as_secs())
            .unwrap_or(0.0);
        // The overhead stretches remaining work at the (former) rate.
        let work = run.work_remaining + overhead * run.rate;
        self.books[run.idx].suspensions += 1;
        self.suspended.push((run.idx, work));
    }

    /// Whether a pending job may start now under the carbon-aware gate.
    #[inline]
    fn eligible(&self, idx: usize, now: SimTime) -> bool {
        let Policy::CarbonAware(cfg) = &self.cfg.policy else {
            return true;
        };
        let job = &self.jobs[idx];
        if job.walltime_estimate <= cfg.short_job_cutoff {
            return true;
        }
        if now.saturating_since(job.submit) >= cfg.max_delay {
            return true;
        }
        match self.ci_at(now) {
            Some(ci) => ci < cfg.green_threshold_fraction * self.trace_mean,
            None => true,
        }
    }

    /// Whether suspended jobs may resume now (checkpoint hysteresis).
    fn resume_allowed(&self, now: SimTime) -> bool {
        match (&self.cfg.checkpoint, self.ci_at(now)) {
            (Some(cfg), Some(ci)) => ci < cfg.resume_threshold_fraction * self.trace_mean,
            _ => true,
        }
    }

    /// The core scheduling entry point: skips the pass outright when it
    /// is provably a no-op (the dominant case in long post-workload
    /// tick tails), otherwise runs it and records the new quiescent
    /// state.
    fn try_schedule(&mut self, now: SimTime) {
        if self.can_skip_schedule(now) {
            self.stats.schedule_skips += 1;
            return;
        }
        self.stats.schedule_passes += 1;
        self.schedule_pass(now);
        // The pass ran to fixpoint: nothing more can start at `now`.
        // Any mutation (start, finish, suspend, reshape, failure,
        // repair, submit) clears the flag again.
        self.quiescent = true;
        self.quiescent_budget = self.budget_at(now);
        self.quiescent_resume_ok = self.resume_allowed(now);
    }

    /// Whether a scheduling pass at `now` is provably a no-op.
    ///
    /// Proof sketch: while `quiescent` holds, no mutation has occurred
    /// since the last pass ran to fixpoint — free nodes, running power,
    /// the pending list and its order, and every job's absolute finish
    /// projection are all unchanged. Every start in every policy is
    /// gated on `choose_alloc`, whose inputs are free nodes, running
    /// power and the budget value — so with an identical budget value
    /// the same `None`s fall out. EASY backfill additionally compares
    /// `now + walltime` against the absolute shadow time, which only
    /// flips feasible→infeasible as `now` advances. Resumes are gated
    /// on `resume_allowed` (tracked as a bool) and `choose_alloc`.
    /// Fair share imposes no extra guard: the normalized pending key is
    /// time-invariant, and the only operation that changes relative
    /// order (`record_usage`) clears `quiescent` itself — so while
    /// quiescent holds, the pending order is frozen.
    fn can_skip_schedule(&self, now: SimTime) -> bool {
        if !self.quiescent {
            return false;
        }
        // Time-dependent machinery: the carbon-aware gate compares
        // `now` against per-job delay deadlines and the CI trace, and
        // malleable growth is re-probed every tick. Never skip those.
        if matches!(self.cfg.policy, Policy::CarbonAware(_)) || self.cfg.enable_malleability {
            return false;
        }
        // Conservative replanning mixes absolute times (running-job
        // completions) with now-relative reservation chains, so merely
        // advancing `now` can reorder the profile. Only skip once
        // nothing is running — then the profile shifts uniformly.
        if matches!(self.cfg.policy, Policy::ConservativeBackfill) && !self.running.is_empty() {
            return false;
        }
        // Fair share blocks skipping only in the legacy-key regime,
        // where the per-read `powf` key drifts as `now` advances (and
        // underflows to exactly 0.0 at a user-specific time). Once a
        // legacy resort has observed every pending user's usage at
        // exactly 0.0, zero is absorbing and the order is frozen again.
        // In the normalized regime the key is time-invariant, so no
        // guard is needed — but a pass that *would* cross into the
        // legacy regime must run so the switch happens on schedule.
        if self.cfg.fair_share.is_some()
            && self.pending.len() >= 2
            && !self.usage_all_zero
            && (self.fs_legacy_keys || self.fs_should_degrade(now))
        {
            return false;
        }
        // A budget change alters `choose_alloc`. Compare the value, not
        // the bucket index: flat stretches and the clamped tail past
        // the end of the series still skip.
        if self.cfg.power_budget.is_some() && self.budget_at(now) != self.quiescent_budget {
            return false;
        }
        // Checkpoint hysteresis: resume eligibility follows the CI
        // trace; skip only while the verdict is unchanged.
        if !self.suspended.is_empty() && self.resume_allowed(now) != self.quiescent_resume_ok {
            return false;
        }
        true
    }

    /// The core scheduling pass: resume suspended, start pending (with
    /// EASY backfilling where enabled).
    #[inline(never)]
    fn schedule_pass(&mut self, now: SimTime) {
        self.fixup_pending(now);
        // 1. Resume suspended jobs (FIFO) if the grid allows it. Jobs
        // that resume are compacted out in place — same visit order and
        // intervening mutations as the old remove-and-continue loop,
        // without the O(n) removes.
        if !self.suspended.is_empty() && self.resume_allowed(now) {
            let mut write = 0;
            let mut read = 0;
            while read < self.suspended.len() {
                let (idx, work) = self.suspended[read];
                if let Some(alloc) = self.choose_alloc(idx, now) {
                    let restart = self
                        .cfg
                        .checkpoint
                        .as_ref()
                        .map(|c| c.restart_overhead.as_secs())
                        .unwrap_or(0.0);
                    let job = &self.jobs[idx];
                    let rate = job.speedup.speedup(alloc.min(job.efficient_nodes).max(1));
                    self.start_job(idx, alloc, work + restart * rate, now);
                } else {
                    self.suspended[write] = self.suspended[read];
                    write += 1;
                }
                read += 1;
            }
            self.suspended.truncate(write);
        }

        if matches!(self.cfg.policy, Policy::ConservativeBackfill) {
            self.conservative_schedule(now);
            return;
        }

        // 2. Start pending jobs. Head-of-queue starts are drained once
        // on exit (`consumed`) instead of one O(n) front-removal each.
        let mut consumed = 0;
        loop {
            // First eligible pending job is the "head" holding the
            // reservation.
            let Some(head_pos) =
                (consumed..self.pending.len()).find(|&p| self.eligible(self.pending[p], now))
            else {
                self.pending.drain_front(consumed);
                return;
            };
            let head_idx = self.pending[head_pos];
            if let Some(alloc) = self.choose_alloc(head_idx, now) {
                if head_pos == consumed {
                    // Contiguous head start: defer the removal.
                    consumed += 1;
                } else {
                    // Mid-list head (carbon-aware eligibility gaps).
                    self.pending.remove(head_pos);
                }
                let work = self.jobs[head_idx].work;
                self.start_job(head_idx, alloc, work, now);
                continue;
            }
            // Head blocked: drain started heads before backfill walks
            // the list, then backfill if the policy allows.
            self.pending.drain_front(consumed);
            if matches!(self.cfg.policy, Policy::Fcfs) {
                return;
            }
            self.backfill(head_idx, now);
            return;
        }
    }

    /// Conservative backfilling: recompute all reservations from scratch
    /// (standard simulator practice); start exactly the jobs whose
    /// reservation begins now. Reservation durations use user walltime
    /// estimates; actual completions free resources earlier and the next
    /// pass re-plans.
    ///
    /// Long pending queues additionally run a *speculative parallel
    /// phase* per planning round: every candidate's earliest slot is
    /// computed concurrently against the round's immutable profile
    /// snapshot, and the ordered commit loop below re-verifies each slot
    /// against the live profile, recomputing only the invalidated ones.
    /// See [`window_feasible`] for why this is byte-identical to the
    /// serial planner at every thread count.
    fn conservative_schedule(&mut self, now: SimTime) {
        // The profile, the pending snapshot, and the speculative slots
        // live in reusable scratch buffers: a steady-state pass
        // allocates nothing (`collect_into_vec` fills `spec` in place).
        let mut events = std::mem::take(&mut self.scratch.events);
        let mut plan = std::mem::take(&mut self.scratch.plan);
        let mut spec = std::mem::take(&mut self.scratch.spec);
        let caps = (events.capacity(), plan.capacity(), spec.capacity());
        'restart: loop {
            // Availability profile: (time, +freed nodes) from running
            // jobs, kept sorted by time (ties in insertion order, like
            // the stable sort the old per-call slot search did) so the
            // slot search consumes it directly.
            events.clear();
            for r in &self.running {
                let remaining = SimDuration::from_secs(
                    (r.work_remaining - (now - r.last_update).as_secs().max(0.0) * r.rate).max(0.0)
                        / r.rate,
                );
                let t = now + remaining;
                if t > now {
                    sorted_insert(&mut events, (t, r.alloc as i64));
                }
            }
            let mut free_now = self.alloc.free() as i64;

            plan.clear();
            plan.extend_from_slice(&self.pending);

            // Speculative phase: fan the candidates out across the
            // shared worker budget against the immutable snapshot
            // (`free_now`, `events` as built above). Gated behind the
            // queue-length threshold so short queues skip the setup
            // cost, and behind budget availability so a sim running
            // inside a sweep worker stays serial instead of
            // oversubscribing. The gate only picks between two
            // byte-identical code paths.
            let speculate = !plan.is_empty()
                && plan.len() >= par_pending_min()
                && rayon::available_extra_workers() > 0;
            if speculate {
                let jobs = self.jobs;
                let cluster_nodes = self.cfg.cluster.nodes;
                let base_free = free_now;
                let evs: &[(SimTime, i64)] = &events;
                plan.par_iter()
                    .map(|&idx| {
                        let job = &jobs[idx];
                        let (min_alloc, _) = job.bounds();
                        let alloc = job.requested_nodes.max(min_alloc).min(cluster_nodes);
                        earliest_slot_sorted(
                            base_free,
                            evs,
                            now,
                            alloc as i64,
                            job.walltime_estimate,
                        )
                    })
                    .collect_into_vec(&mut spec);
                self.stats.spec_planned += plan.len() as u64;
            } else {
                spec.clear();
            }

            for (k, &idx) in plan.iter().enumerate() {
                let job = &self.jobs[idx];
                let (min_alloc, _) = job.bounds();
                let alloc = job
                    .requested_nodes
                    .max(min_alloc)
                    .min(self.cfg.cluster.nodes);
                let dur = job.walltime_estimate;
                // Find the earliest start ≥ now where `alloc` nodes stay
                // free for `dur`, given the profile. A still-feasible
                // speculative slot *is* that start (see
                // [`window_feasible`]); one invalidated by an earlier
                // commit in this round is recomputed serially.
                let start = if speculate {
                    let s = spec[k];
                    if window_feasible(free_now, &events, s, alloc as i64, dur) {
                        self.stats.spec_hits += 1;
                        s
                    } else {
                        self.stats.spec_invalidations += 1;
                        earliest_slot_sorted(free_now, &events, now, alloc as i64, dur)
                    }
                } else {
                    earliest_slot_sorted(free_now, &events, now, alloc as i64, dur)
                };
                if start == now {
                    // Can the job actually start (power check happens only
                    // at real starts)? `choose_alloc` already guarantees
                    // the class minimum when it returns Some.
                    if let Some(actual) = self.choose_alloc(idx, now) {
                        // `idx` came off the pending list above; the
                        // lookup-then-remove tolerates it being gone.
                        self.pending.remove_job(idx);
                        let work = job.work;
                        self.start_job(idx, actual, work, now);
                        continue 'restart;
                    }
                    // Power-blocked: fall through and reserve instead.
                }
                // Record the reservation in the profile. Events at or
                // before `now` stay out of it (the old slot search
                // filtered them per call).
                if start == now {
                    free_now -= alloc as i64;
                } else {
                    sorted_insert(&mut events, (start, -(alloc as i64)));
                }
                let end = start + dur;
                if end > now {
                    sorted_insert(&mut events, (end, alloc as i64));
                }
            }
            break;
        }
        if (events.capacity(), plan.capacity(), spec.capacity()) != caps {
            self.stats.scratch_grows += 1;
        }
        self.scratch.events = events;
        self.scratch.plan = plan;
        self.scratch.spec = spec;
    }

    /// EASY backfilling around a blocked head job.
    #[inline(never)]
    fn backfill(&mut self, head_idx: usize, now: SimTime) {
        let head_job = &self.jobs[head_idx];
        let (head_min, _) = head_job.bounds();
        let head_need = head_job.requested_nodes.max(head_min);

        // Shadow time: when will enough nodes be free for the head?
        // Uses exact remaining runtimes of running jobs. The frees list
        // lives in scratch and is built pre-sorted (ties in insertion
        // order, matching the old stable sort).
        let mut frees = std::mem::take(&mut self.scratch.frees);
        let frees_cap = frees.capacity();
        frees.clear();
        for r in &self.running {
            let remaining = SimDuration::from_secs(
                (r.work_remaining - (now - r.last_update).as_secs().max(0.0) * r.rate).max(0.0)
                    / r.rate,
            );
            sorted_insert(&mut frees, (now + remaining, r.alloc));
        }
        let mut avail = self.alloc.free();
        let mut shadow = now;
        let mut feasible = true;
        let mut iter = frees.iter();
        while avail < head_need {
            match iter.next() {
                Some(&(t, n)) => {
                    avail += n;
                    shadow = t;
                }
                None => {
                    // Head can never fit (bigger than cluster) — guarded
                    // at submit, but be safe.
                    feasible = false;
                    break;
                }
            }
        }
        if frees.capacity() != frees_cap {
            self.stats.scratch_grows += 1;
        }
        self.scratch.frees = frees;
        if !feasible {
            return;
        }
        // Nodes spare at the shadow time after the head takes its share.
        // Consumed as backfills that outlive the shadow are admitted, so a
        // single pass cannot overdraw it and delay the head.
        let mut spare = avail - head_need;

        // Try to backfill later pending jobs. Started jobs are compacted
        // out in place — same visit order and intervening mutations as
        // the old remove-and-continue loop, without the O(n) removes.
        //
        // Two copies of the walk, chosen once by `track_users`: the
        // untracked loop touches only `idx` and compiles to the same
        // register-resident compaction as the pre-PendQueue code, while
        // the tracked loop additionally carries the user array and the
        // per-user counts. Folding them into one loop keeps the extra
        // state live across the `choose_alloc`/`start_job` calls and
        // spills the compaction cursors — measurably slower for the
        // (dominant) non-fair-share configs.
        if !self.pending.track_users {
            let mut write = 0;
            let mut read = 0;
            while read < self.pending.idx.len() {
                let idx = self.pending.idx[read];
                // Keep the head; skip ineligible jobs (carbon gate).
                if idx == head_idx || !self.eligible(idx, now) {
                    self.pending.idx[write] = idx;
                    write += 1;
                    read += 1;
                    continue;
                }
                let job = &self.jobs[idx];
                let mut started = false;
                if let Some(alloc) = self.choose_alloc(idx, now) {
                    let fits_before_shadow = now + job.walltime_estimate <= shadow;
                    let fits_in_spare = alloc <= spare;
                    if fits_before_shadow || fits_in_spare {
                        if !fits_before_shadow {
                            // This job holds nodes past the shadow: it
                            // draws down the spare pool.
                            spare -= alloc;
                        }
                        let work = job.work;
                        self.start_job(idx, alloc, work, now);
                        started = true;
                    }
                }
                if !started {
                    self.pending.idx[write] = idx;
                    write += 1;
                }
                read += 1;
            }
            self.pending.idx.truncate(write);
            return;
        }
        let mut write = 0;
        let mut read = 0;
        while read < self.pending.idx.len() {
            let idx = self.pending.idx[read];
            // Keep the head; skip ineligible jobs (carbon-aware gate).
            if idx == head_idx || !self.eligible(idx, now) {
                self.pending.keep(write, read);
                write += 1;
                read += 1;
                continue;
            }
            let job = &self.jobs[idx];
            let mut started = false;
            if let Some(alloc) = self.choose_alloc(idx, now) {
                let fits_before_shadow = now + job.walltime_estimate <= shadow;
                let fits_in_spare = alloc <= spare;
                if fits_before_shadow || fits_in_spare {
                    if !fits_before_shadow {
                        // This job holds nodes past the shadow: it draws
                        // down the spare pool.
                        spare -= alloc;
                    }
                    // The compaction drops this entry implicitly: keep
                    // the per-user counts in step.
                    self.pending.uncount(read);
                    let work = job.work;
                    self.start_job(idx, alloc, work, now);
                    started = true;
                }
            }
            if !started {
                self.pending.keep(write, read);
                write += 1;
            }
            read += 1;
        }
        self.pending.truncate(write);
    }

    /// Injects node failures for the elapsed tick: the per-node hazard is
    /// tick/MTBF; each failure strikes a uniformly random node. A busy
    /// node kills its job.
    fn inject_failures(&mut self, now: SimTime) {
        let Some(model) = self.cfg.failures.clone() else {
            return;
        };
        // Take the stream out to sidestep aliasing with &mut self calls.
        let Some(mut rng) = self.failure_rng.take() else {
            return;
        };
        let lambda =
            self.cfg.cluster.nodes as f64 * self.cfg.tick.as_secs() / model.node_mtbf.as_secs();
        let failures = rng.poisson(lambda);
        if failures > 0 {
            self.quiescent = false;
        }
        for _ in 0..failures {
            let node = rng.uniform_u64(self.cfg.cluster.nodes as u64) as u32;
            let busy = self.alloc.busy();
            self.total_failures += 1;
            // The node is busy with probability busy/total; map the node
            // index onto the busy range deterministically.
            if node < busy {
                // Pick the victim job weighted by allocation size.
                let mut cursor = node;
                let mut victim = None;
                for (pos, run) in self.running.iter().enumerate() {
                    if cursor < run.alloc {
                        victim = Some(pos);
                        break;
                    }
                    cursor -= run.alloc;
                }
                if let Some(pos) = victim {
                    self.fail_job(pos, now);
                }
            }
            // The failed node goes down for the repair window: take it out
            // of the free pool (a just-killed job freed at least one).
            if self.alloc.free() > 0 {
                self.alloc.claim(1);
                self.queue.schedule(now + model.mttr, Ev::NodeRepaired);
            }
        }
        self.failure_rng = Some(rng);
    }

    /// Kills a running job after a node failure: checkpointable jobs roll
    /// back to the segment boundary; others lose everything and requeue.
    fn fail_job(&mut self, pos: usize, now: SimTime) {
        self.quiescent = false;
        Self::progress(&mut self.running[pos], now);
        self.close_segment(pos, now);
        let run = self.running.remove(pos);
        let job = &self.jobs[run.idx];
        self.alloc.release(run.alloc);
        self.running_power -= job.power_at(run.alloc);
        self.queue.cancel(run.finish_ev);
        self.books[run.idx].restarts += 1;
        if job.checkpointable {
            // Roll back to the last periodic checkpoint: lose only the
            // work since the last whole interval of this segment. The
            // restart overhead is charged once, at resume.
            let interval = self
                .cfg
                .checkpoint
                .as_ref()
                .map(|c| c.interval.as_secs())
                .unwrap_or(3600.0);
            let interval_work = (interval * run.rate).max(1e-9);
            let done_in_segment = (run.seg_start_work - run.work_remaining).max(0.0);
            let covered = (done_in_segment / interval_work).floor() * interval_work;
            let resume_work = run.seg_start_work - covered;
            self.suspended.push((run.idx, resume_work));
        } else {
            // Total loss: back to pending with full work (start_job always
            // begins rigid restarts from job.work).
            self.pending_insert(run.idx, now);
        }
    }

    /// Consults the job-side §3.2 protocol: is a grow offer worth the
    /// reconfiguration cost given the job's remaining work?
    fn grow_accepted(&mut self, pos: usize, proposed: u32, now: SimTime) -> bool {
        Self::progress(&mut self.running[pos], now);
        let run = &self.running[pos];
        let job = &self.jobs[run.idx];
        crate::malleable::evaluate_grow(
            job.speedup,
            run.alloc,
            proposed,
            job.efficient_nodes.max(1),
            run.work_remaining,
            self.cfg.reshape_cost,
        ) == crate::malleable::OfferDecision::Accept
    }

    /// Hourly tick: budget enforcement, checkpoint policy, malleable
    /// growth.
    fn tick(&mut self, now: SimTime) {
        self.tick_scheduled = false;
        sustain_sim_core::faultpoint!(infallible "sim::tick");
        self.inject_failures(now);
        // --- Checkpoint policy: CI-driven suspends (§3.3).
        if let (Some(cfg), Some(ci)) = (self.cfg.checkpoint.clone(), self.ci_at(now)) {
            if ci > cfg.suspend_threshold_fraction * self.trace_mean {
                let mut pos = 0;
                while pos < self.running.len() {
                    let run = &mut self.running[pos];
                    let job = &self.jobs[run.idx];
                    Self::progress(run, now);
                    let remaining = SimDuration::from_secs(run.work_remaining / run.rate);
                    if job.checkpointable && remaining > cfg.min_remaining {
                        self.suspend(pos, now);
                    } else {
                        pos += 1;
                    }
                }
            }
        }

        // --- Power budget enforcement.
        if let Some(budget) = self.budget_at(now) {
            // Shrink malleable jobs first.
            if self.running_power > budget && self.cfg.enable_malleability {
                for pos in 0..self.running.len() {
                    if self.running_power <= budget {
                        break;
                    }
                    let idx = self.running[pos].idx;
                    let job = &self.jobs[idx];
                    let (min, _) = job.bounds();
                    if job.class.is_malleable() && self.running[pos].alloc > min {
                        // Shrink as far as needed, at most to min.
                        let over = self.running_power - budget;
                        let sheddable = (over.watts() / job.power_per_node.watts()).ceil() as u32;
                        let new_alloc = self.running[pos].alloc.saturating_sub(sheddable).max(min);
                        if new_alloc < self.running[pos].alloc {
                            self.reshape(pos, new_alloc, now);
                        }
                    }
                }
            }
            // Then suspend checkpointable jobs (largest power first).
            if self.running_power > budget && self.cfg.checkpoint.is_some() {
                loop {
                    if self.running_power <= budget {
                        break;
                    }
                    let candidate = self
                        .running
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| self.jobs[r.idx].checkpointable)
                        .max_by(|a, b| {
                            self.jobs[a.1.idx]
                                .power_at(a.1.alloc)
                                .cmp(&self.jobs[b.1.idx].power_at(b.1.alloc))
                        })
                        .map(|(pos, _)| pos);
                    match candidate {
                        Some(pos) => self.suspend(pos, now),
                        None => break,
                    }
                }
            }
            // Growth: malleable jobs absorb new headroom.
            if self.cfg.enable_malleability {
                for pos in 0..self.running.len() {
                    let idx = self.running[pos].idx;
                    let job = &self.jobs[idx];
                    let (_, max) = job.bounds();
                    let cur = self.running[pos].alloc;
                    if !job.class.is_malleable() || cur >= max {
                        continue;
                    }
                    let headroom = budget - self.running_power;
                    if headroom <= Power::ZERO {
                        break;
                    }
                    let power_fit = (headroom.watts() / job.power_per_node.watts()) as u32;
                    let useful_cap = job.efficient_nodes.max(1);
                    let grow = (max - cur)
                        .min(self.alloc.free())
                        .min(power_fit)
                        .min(useful_cap.saturating_sub(cur));
                    if grow > 0 && self.grow_accepted(pos, cur + grow, now) {
                        self.reshape(pos, cur + grow, now);
                    }
                }
            }
        } else if self.cfg.enable_malleability {
            // No budget: malleable jobs can still absorb free nodes.
            for pos in 0..self.running.len() {
                let idx = self.running[pos].idx;
                let job = &self.jobs[idx];
                let (_, max) = job.bounds();
                let cur = self.running[pos].alloc;
                if !job.class.is_malleable() || cur >= max {
                    continue;
                }
                let useful_cap = job.efficient_nodes.max(1);
                let grow = (max - cur)
                    .min(self.alloc.free())
                    .min(useful_cap.saturating_sub(cur));
                if grow > 0 && self.grow_accepted(pos, cur + grow, now) {
                    self.reshape(pos, cur + grow, now);
                }
            }
        }

        self.try_schedule(now);
        self.maybe_schedule_tick(now);
    }

    fn work_outstanding(&self) -> bool {
        !self.pending.is_empty()
            || !self.running.is_empty()
            || !self.suspended.is_empty()
            || self.submitted < self.jobs.len()
    }

    fn needs_ticks(&self) -> bool {
        // Ticks matter only when time-varying machinery is active.
        (self.cfg.power_budget.is_some()
            || self.cfg.checkpoint.is_some()
            || self.cfg.enable_malleability
            || self.cfg.failures.is_some()
            || matches!(self.cfg.policy, Policy::CarbonAware(_)))
            && self.work_outstanding()
    }

    fn maybe_schedule_tick(&mut self, now: SimTime) {
        if !self.tick_scheduled && self.needs_ticks() {
            self.queue.schedule(now + self.cfg.tick, Ev::Tick);
            self.tick_scheduled = true;
        }
    }

    /// Number of event-loop steps between cancellation checks when a
    /// control is attached. Power-of-two so the gate is a mask; easy
    /// runs can have zero ticks, so gating on ticks alone would never
    /// observe a cancellation there.
    const CTL_CHECK_MASK: u64 = 255;

    fn run(mut self, ctl: Option<&RunCtl>) -> Result<SimOutcome, SimError> {
        for (i, job) in self.jobs.iter().enumerate() {
            self.queue.schedule(job.submit, Ev::Submit(i));
        }
        self.maybe_schedule_tick(SimTime::ZERO);

        let mut steps = 0u64;
        while let Some((t, ev)) = self.queue.pop() {
            steps += 1;
            if steps > self.cfg.max_steps {
                break;
            }
            if let Some(ctl) = ctl {
                // Bucket-granularity cancellation: every 256 events or
                // at any tick, whichever comes first.
                if steps & Self::CTL_CHECK_MASK == 0 || matches!(ev, Ev::Tick) {
                    ctl.check(t)?;
                }
            }
            self.account(t);
            match ev {
                Ev::Submit(idx) => {
                    self.submitted += 1;
                    let job = &self.jobs[idx];
                    let (min, _) = job.bounds();
                    // A job whose minimum allocation can never fit the
                    // best-ever power budget would pend forever: reject.
                    let power_feasible = match self.max_budget {
                        Some(max) => job.power_at(min) <= max,
                        None => true,
                    };
                    let admitted = match &self.cfg.queues {
                        Some(qs) => match qs.classify(job) {
                            Some(q) => {
                                self.priorities[idx] = q.priority;
                                true
                            }
                            None => false,
                        },
                        None => true,
                    };
                    if min > self.cfg.cluster.nodes || !admitted || !power_feasible {
                        self.books[idx].rejected = true;
                        self.rejected += 1;
                    } else {
                        self.pending_insert(idx, t);
                        self.try_schedule(t);
                    }
                    self.maybe_schedule_tick(t);
                }
                Ev::Finish(id) => {
                    self.finish_job(id, t);
                    self.try_schedule(t);
                }
                Ev::Tick => self.tick(t),
                Ev::NodeRepaired => {
                    self.quiescent = false;
                    self.alloc.release(1);
                    self.try_schedule(t);
                }
            }
        }

        self.stats.events = steps;
        self.stats.trace_bucket_hits = self.trace_hits.get();
        self.stats.trace_bucket_misses = self.trace_misses.get();

        // Build records.
        let mut records = Vec::with_capacity(self.completed);
        for (idx, book) in self.books.iter().enumerate() {
            if let (Some(start), Some(end)) = (book.start, book.end) {
                let job = &self.jobs[idx];
                records.push(JobRecord {
                    id: job.id,
                    user: job.user,
                    submit: job.submit,
                    start,
                    end,
                    segments: book.segments.clone(),
                    suspensions: book.suspensions,
                    reshapes: book.reshapes,
                    restarts: book.restarts,
                });
            }
        }
        records.sort_by_key(|a| a.id);
        let unfinished = self.jobs.len() - records.len();
        let mut out = SimOutcome::from_records(
            records,
            unfinished,
            self.cfg.cluster.nodes,
            self.cfg.carbon_trace.as_ref(),
            self.idle_energy,
            self.idle_carbon,
            self.violation_seconds,
        );
        out.hot_path = self.stats;
        crate::metrics::record_hot_path_totals(&out.hot_path);
        Ok(out)
    }
}

/// Earliest time ≥ `now` at which `alloc` nodes remain continuously free
/// for `dur`. Unlike the reference [`earliest_slot`], this expects
/// `evs` pre-sorted by time with every entry strictly after `now` — the
/// conservative pass maintains its profile that way — so the search is a
/// single allocation-free sweep: a running prefix (`free`, `consumed`)
/// advances candidate by candidate instead of re-summing per candidate.
fn earliest_slot_sorted(
    free_now: i64,
    evs: &[(SimTime, i64)],
    now: SimTime,
    alloc: i64,
    dur: SimDuration,
) -> SimTime {
    // Candidate start times: `now`, then every event time.
    let mut free = free_now;
    let mut consumed = 0usize;
    let mut candidate = now;
    loop {
        // Fold in every event at or before the candidate; equal-time
        // runs fold together, like the reference's `take_while(<= t0)`,
        // which also means duplicate candidate times are visited once.
        while consumed < evs.len() && evs[consumed].0 <= candidate {
            free += evs[consumed].1;
            consumed += 1;
        }
        if free >= alloc {
            // Check the window [candidate, candidate + dur) stays
            // feasible against the strictly-later events.
            let t_end = candidate + dur;
            let mut ok = true;
            let mut f = free;
            for e in &evs[consumed..] {
                if e.0 >= t_end {
                    break;
                }
                f += e.1;
                if f < alloc {
                    ok = false;
                    break;
                }
            }
            if ok {
                return candidate;
            }
        }
        if consumed >= evs.len() {
            break;
        }
        candidate = evs[consumed].0;
    }
    // No feasible window found (should not happen when alloc ≤ cluster);
    // fall back to after the last event.
    evs.last().map(|e| e.0).unwrap_or(now)
}

/// Earliest time ≥ `now` at which `alloc` nodes remain continuously free
/// for `dur`, given `free_now` free nodes and a list of (time, delta)
/// availability events (positive = nodes freed, negative = reservation).
///
/// Reference implementation: filters and sorts per call. Kept as the
/// oracle [`earliest_slot_sorted`] is tested against.
#[cfg(test)]
fn earliest_slot(
    free_now: i64,
    events: &[(SimTime, i64)],
    now: SimTime,
    alloc: i64,
    dur: SimDuration,
) -> SimTime {
    let mut evs: Vec<(SimTime, i64)> = events.iter().copied().filter(|e| e.0 > now).collect();
    evs.sort_by_key(|a| a.0);
    // Candidate start times: now and every event time.
    let mut candidates: Vec<SimTime> = Vec::with_capacity(evs.len() + 1);
    candidates.push(now);
    candidates.extend(evs.iter().map(|e| e.0));
    for &t0 in &candidates {
        let t_end = t0 + dur;
        // Free nodes at t0.
        let mut free = free_now
            + evs
                .iter()
                .take_while(|e| e.0 <= t0)
                .map(|e| e.1)
                .sum::<i64>();
        if free < alloc {
            continue;
        }
        // Check the window stays feasible.
        let mut ok = true;
        for e in evs.iter().skip_while(|e| e.0 <= t0) {
            if e.0 >= t_end {
                break;
            }
            free += e.1;
            if free < alloc {
                ok = false;
                break;
            }
        }
        if ok {
            return t0;
        }
    }
    // No feasible window found (should not happen when alloc ≤ cluster);
    // fall back to after the last event.
    evs.last().map(|e| e.0).unwrap_or(now)
}

/// Runs the simulator over a job list.
///
/// ```
/// use sustain_scheduler::cluster::Cluster;
/// use sustain_scheduler::sim::{simulate, SimConfig};
/// use sustain_sim_core::time::{SimDuration, SimTime};
/// use sustain_workload::job::JobBuilder;
///
/// let job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(2.0)).build();
/// let out = simulate(&[job], &SimConfig::easy(Cluster::new(8)));
/// assert_eq!(out.records.len(), 1);
/// assert!((out.records[0].span().as_hours() - 2.0).abs() < 1e-9);
/// ```
pub fn simulate(jobs: &[Job], cfg: &SimConfig) -> SimOutcome {
    match Sim::new(jobs, cfg).run(None) {
        Ok(out) => out,
        // With no control attached the loop has no cancellation point.
        Err(_) => unreachable!("uncontrolled simulation cannot be cancelled"),
    }
}

/// [`simulate`] with a cooperative cancellation control: the event loop
/// checks `ctl` at bucket granularity (every 256 events or at any tick)
/// and returns [`SimError::Cancelled`] stamped with the simulation time
/// reached. An unlimited control adds only the per-bucket check.
pub fn simulate_with_ctl(
    jobs: &[Job],
    cfg: &SimConfig,
    ctl: &RunCtl,
) -> Result<SimOutcome, SimError> {
    Sim::new(jobs, cfg).run(Some(ctl))
}

/// Fallible front door for untrusted configurations: validates `cfg` up
/// front and returns a typed [`SimError`] instead of panicking somewhere
/// in the event loop. Internal invariant asserts remain — they fire on
/// simulator bugs, not on bad input that got past this gate.
pub fn try_simulate(jobs: &[Job], cfg: &SimConfig) -> Result<SimOutcome, SimError> {
    cfg.validate()?;
    Ok(simulate(jobs, cfg))
}

/// [`try_simulate`] with a cancellation control: validates up front,
/// then runs under `ctl` like [`simulate_with_ctl`].
pub fn try_simulate_with_ctl(
    jobs: &[Job],
    cfg: &SimConfig,
    ctl: &RunCtl,
) -> Result<SimOutcome, SimError> {
    cfg.validate()?;
    simulate_with_ctl(jobs, cfg, ctl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_sim_core::series::TimeSeries;
    use sustain_workload::job::{JobBuilder, JobClass};

    fn rigid(id: u64, submit_h: f64, nodes: u32, runtime_h: f64) -> Job {
        JobBuilder::new(
            id,
            SimTime::from_hours(submit_h),
            nodes,
            SimDuration::from_hours(runtime_h),
        )
        .power_per_node(Power::from_watts(500.0))
        .build()
    }

    #[test]
    fn single_job_runs_to_completion() {
        let jobs = vec![rigid(1, 0.0, 4, 2.0)];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.unfinished, 0);
        let r = &out.records[0];
        assert_eq!(r.wait(), SimDuration::ZERO);
        assert!((r.span().as_hours() - 2.0).abs() < 1e-9);
        assert_eq!(r.segments.len(), 1);
        assert_eq!(r.segments[0].nodes, 4);
        // Energy: 4 × 500 W × 2 h = 4 kWh.
        assert!((r.energy().kwh() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fcfs_queues_when_full() {
        // 8-node cluster; two 8-node jobs must serialize.
        let jobs = vec![rigid(1, 0.0, 8, 2.0), rigid(2, 0.0, 8, 1.0)];
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::Fcfs,
                ..SimConfig::easy(Cluster::new(8))
            },
        );
        let r2 = &out.records[1];
        assert!((r2.wait().as_hours() - 2.0).abs() < 1e-9);
        assert!((out.makespan.as_hours() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn easy_backfills_small_job() {
        // Cluster 8. Job1 takes 6 nodes for 4 h. Job2 wants 8 (blocked
        // until t=4). Job3 wants 2 nodes for 1 h → backfills immediately
        // (2 ≤ free and finishes before the shadow anyway).
        let jobs = vec![
            rigid(1, 0.0, 6, 4.0),
            rigid(2, 0.1, 8, 1.0),
            rigid(3, 0.2, 2, 1.0),
        ];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            r3.start.as_hours() < 0.3,
            "job3 should backfill, started at {}",
            r3.start
        );
        // FCFS would have made job3 wait behind job2 until t=4.
        let fcfs = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::Fcfs,
                ..SimConfig::easy(Cluster::new(8))
            },
        );
        let r3f = fcfs.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(r3f.start.as_hours() >= 4.0);
    }

    #[test]
    fn backfill_spare_not_overcommitted() {
        // All candidates queue while jobA fills the cluster, so one
        // scheduling pass (jobA's finish at t=1) sees them all. Then:
        // jobB takes 4 nodes until t=5; the head (job2) needs 8 → shadow
        // t=5 with spare 2. Jobs 3 and 4 (2 nodes × 8 h) each fit the
        // spare alone, but both together would overdraw it and delay the
        // head past t=5.
        let jobs = vec![
            rigid(1, 0.0, 10, 1.0), // fills the cluster until t=1
            rigid(5, 0.05, 4, 4.0), // jobB: 4 nodes, t=1..5
            rigid(2, 0.1, 8, 1.0),  // the head reservation
            rigid(3, 0.2, 2, 8.0),
            rigid(4, 0.3, 2, 8.0),
        ];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(10)));
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        assert!(
            (r2.start.as_hours() - 5.0).abs() < 1e-6,
            "head delayed to {} by overcommitted spare",
            r2.start
        );
    }

    #[test]
    fn backfill_does_not_delay_head_reservation() {
        // Cluster 8. Job1: 6 nodes, 4 h. Job2 (head): 8 nodes → shadow t=4.
        // Job3: 4 nodes, 8 h — would push the head past t=4 (only 2 spare),
        // must NOT backfill.
        let jobs = vec![
            rigid(1, 0.0, 6, 4.0),
            rigid(2, 0.1, 8, 1.0),
            rigid(3, 0.2, 4, 8.0),
        ];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        assert!(
            (r2.start.as_hours() - 4.0).abs() < 1e-6,
            "head delayed to {}",
            r2.start
        );
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(r3.start >= r2.start);
    }

    #[test]
    fn oversized_job_rejected_not_hung() {
        let jobs = vec![rigid(1, 0.0, 64, 1.0), rigid(2, 0.0, 4, 1.0)];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        assert_eq!(out.unfinished, 1);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].id, JobId(2));
    }

    #[test]
    fn power_budget_limits_concurrency() {
        // Each job: 4 nodes × 500 W = 2 kW. Budget 3 kW → jobs serialize.
        let jobs = vec![rigid(1, 0.0, 4, 1.0), rigid(2, 0.0, 4, 1.0)];
        let budget = TimeSeries::constant(SimTime::ZERO, SimDuration::from_hours(1.0), 3000.0, 100);
        let out = simulate(
            &jobs,
            &SimConfig {
                power_budget: Some(budget),
                ..SimConfig::easy(Cluster::new(16))
            },
        );
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        assert!(
            r2.start.as_hours() >= 1.0,
            "job2 must wait for power, started {}",
            r2.start
        );
        assert_eq!(out.budget_violation_seconds, 0.0);
    }

    #[test]
    fn utilization_and_idle_energy_accounted() {
        let jobs = vec![rigid(1, 0.0, 4, 2.0)];
        let cluster = Cluster::new(8).with_idle_power(Power::from_watts(100.0));
        let out = simulate(&jobs, &SimConfig::easy(cluster));
        // 4 of 8 nodes busy for the whole 2 h makespan → 50 %.
        assert!((out.utilization - 0.5).abs() < 1e-9);
        // Idle: 4 idle nodes × 100 W × 2 h = 0.8 kWh.
        assert!((out.idle_energy.kwh() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = sustain_workload::synth::WorkloadConfig::default();
        let jobs = sustain_workload::synth::generate(&cfg, SimDuration::from_hours(48.0), 5);
        let a = simulate(&jobs, &SimConfig::easy(Cluster::new(256)));
        let b = simulate(&jobs, &SimConfig::easy(Cluster::new(256)));
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.utilization, b.utilization);
    }

    #[test]
    fn synthetic_trace_completes_under_easy() {
        let cfg = sustain_workload::synth::WorkloadConfig::default();
        let jobs = sustain_workload::synth::generate(&cfg, SimDuration::from_hours(24.0 * 7.0), 9);
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(600)));
        assert_eq!(out.unfinished, 0, "all jobs should finish");
        assert!(out.utilization > 0.05 && out.utilization < 1.0);
        // No job may ever hold more nodes than the cluster.
        for r in &out.records {
            for s in &r.segments {
                assert!(s.nodes <= 600);
            }
        }
    }

    #[test]
    fn malleable_job_grows_into_free_nodes() {
        let malleable = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(8.0))
            .class(JobClass::Malleable {
                min_nodes: 2,
                max_nodes: 16,
            })
            .efficient_nodes(16)
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(16));
        cfg.enable_malleability = true;
        let out = simulate(&[malleable], &cfg);
        let r = &out.records[0];
        assert!(r.reshapes > 0, "job should have grown");
        // Growth speeds the job up beyond its 8 h @ 4-node runtime.
        assert!(
            r.span().as_hours() < 8.0,
            "span {} should beat the rigid runtime",
            r.span()
        );
        assert_eq!(out.unfinished, 0);
    }

    #[test]
    fn checkpoint_suspends_during_high_carbon() {
        // CI: mean 200; hours 2-9 are 400 (high) → suspend threshold hit.
        let mut ci = vec![100.0; 2];
        ci.extend(vec![400.0; 7]);
        ci.extend(vec![100.0; 15]);
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), ci),
        );
        let job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(6.0))
            .checkpointable(true)
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.carbon_trace = Some(trace);
        cfg.checkpoint = Some(CheckpointCfg::default());
        let out = simulate(&[job], &cfg);
        let r = &out.records[0];
        assert!(r.suspensions >= 1, "job should suspend in the brown window");
        assert!(r.segments.len() >= 2);
        // Span exceeds pure compute time because of the suspension gap.
        assert!(r.span() > r.compute_time());
        assert_eq!(out.unfinished, 0);
    }

    #[test]
    fn carbon_aware_gate_delays_long_jobs_to_green_windows() {
        // CI: first 6 h dirty (400), then green (100). Mean ≈ 175..250.
        let mut ci = vec![400.0; 6];
        ci.extend(vec![100.0; 42]);
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), ci),
        );
        let long_job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(5.0))
            .walltime(SimDuration::from_hours(8.0))
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.carbon_trace = Some(trace);
        cfg.policy = Policy::CarbonAware(CarbonAwareCfg::default());
        let out = simulate(&[long_job], &cfg);
        let r = &out.records[0];
        assert!(
            r.start.as_hours() >= 6.0,
            "long job should wait for the green window, started {}",
            r.start
        );
    }

    #[test]
    fn carbon_aware_gate_lets_short_jobs_through() {
        let mut ci = vec![400.0; 6];
        ci.extend(vec![100.0; 42]);
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), ci),
        );
        let short_job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(0.5))
            .walltime(SimDuration::from_hours(1.0))
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.carbon_trace = Some(trace);
        cfg.policy = Policy::CarbonAware(CarbonAwareCfg::default());
        let out = simulate(&[short_job], &cfg);
        assert_eq!(out.records[0].start, SimTime::ZERO);
    }

    #[test]
    fn max_delay_bounds_carbon_waiting() {
        // Permanently dirty grid: the gate must still release jobs after
        // max_delay.
        let trace = CarbonTrace::new(
            "t",
            TimeSeries::new(
                SimTime::ZERO,
                SimDuration::from_hours(1.0),
                vec![400.0; 200],
            ),
        );
        let job = JobBuilder::new(1, SimTime::ZERO, 4, SimDuration::from_hours(5.0))
            .walltime(SimDuration::from_hours(8.0))
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.carbon_trace = Some(trace);
        cfg.policy = Policy::CarbonAware(CarbonAwareCfg {
            max_delay: SimDuration::from_hours(12.0),
            ..CarbonAwareCfg::default()
        });
        let out = simulate(&[job], &cfg);
        assert_eq!(out.unfinished, 0);
        let r = &out.records[0];
        assert!(r.start.as_hours() <= 13.0, "started {}", r.start);
        assert!(r.start.as_hours() >= 11.0, "started {}", r.start);
    }

    #[test]
    fn failures_restart_jobs_and_repair_nodes() {
        // Aggressive failures: per-node MTBF of 2 days on an 8-node
        // cluster running a long job.
        let job = JobBuilder::new(1, SimTime::ZERO, 8, SimDuration::from_hours(48.0))
            .walltime(SimDuration::from_hours(96.0))
            .build();
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.failures = Some(FailureModel {
            node_mtbf: SimDuration::from_days(2.0),
            mttr: SimDuration::from_hours(4.0),
            seed: 7,
        });
        let out = simulate(&[job], &cfg);
        assert_eq!(out.unfinished, 0, "job must eventually complete");
        let r = &out.records[0];
        assert!(
            r.restarts > 0,
            "48 h on failing hardware must hit a failure"
        );
        // Non-checkpointable: every restart redoes the full 48 h, so the
        // span is at least restarts+1 full runs minus the last partials.
        assert!(r.span().as_hours() > 48.0);
    }

    #[test]
    fn checkpointable_jobs_lose_less_to_failures() {
        let mk = |ckpt: bool| {
            JobBuilder::new(1, SimTime::ZERO, 8, SimDuration::from_hours(48.0))
                .walltime(SimDuration::from_hours(96.0))
                .checkpointable(ckpt)
                .build()
        };
        let run_with = |job| {
            let mut cfg = SimConfig::easy(Cluster::new(8));
            cfg.failures = Some(FailureModel {
                node_mtbf: SimDuration::from_days(2.0),
                mttr: SimDuration::from_hours(1.0),
                seed: 11,
            });
            cfg.checkpoint = Some(CheckpointCfg {
                // Disable CI-driven behaviour; we only want failure
                // recovery overheads here.
                suspend_threshold_fraction: f64::INFINITY,
                resume_threshold_fraction: f64::INFINITY,
                ..CheckpointCfg::default()
            });
            simulate(&[job], &cfg)
        };
        let plain = run_with(mk(false));
        let ckpt = run_with(mk(true));
        assert_eq!(plain.unfinished, 0);
        assert_eq!(ckpt.unfinished, 0);
        // Same failure seed: the checkpointable variant wastes less
        // compute redoing lost work.
        assert!(
            ckpt.records[0].compute_time() <= plain.records[0].compute_time(),
            "ckpt {} vs plain {}",
            ckpt.records[0].compute_time(),
            plain.records[0].compute_time()
        );
    }

    #[test]
    fn reliable_hardware_has_no_restarts() {
        let jobs = vec![rigid(1, 0.0, 4, 10.0)];
        let out = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        assert_eq!(out.records[0].restarts, 0);
    }

    #[test]
    fn power_infeasible_job_rejected_not_pending_forever() {
        // 100-node job × 500 W = 50 kW demand, but the budget never
        // exceeds 10 kW: the job must be rejected at submit (not pend
        // forever, burning ticks to the step cap).
        let jobs = vec![rigid(1, 0.0, 100, 1.0), rigid(2, 0.0, 4, 1.0)];
        let budget =
            TimeSeries::constant(SimTime::ZERO, SimDuration::from_hours(1.0), 10_000.0, 48);
        let mut cfg = SimConfig::easy(Cluster::new(128));
        cfg.power_budget = Some(budget);
        cfg.max_steps = 100_000;
        let out = simulate(&jobs, &cfg);
        assert_eq!(out.unfinished, 1);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].id, JobId(2));
        // And the run terminated quickly (no runaway tick loop): the
        // makespan is the small job's completion.
        assert!(out.makespan.as_hours() <= 2.0);
    }

    #[test]
    fn fair_share_demotes_heavy_user() {
        // User 0 hogs the machine with job1; then user 0 and user 1 submit
        // identical jobs while it runs. Under fair-share, user 1 goes
        // first once nodes free, despite user 0 submitting earlier.
        let mk = |id: u64, user: u32, submit_h: f64| {
            JobBuilder::new(
                id,
                SimTime::from_hours(submit_h),
                8,
                SimDuration::from_hours(1.0),
            )
            .user(user)
            .build()
        };
        let jobs = vec![mk(1, 0, 0.0), mk(2, 0, 0.1), mk(3, 1, 0.2)];
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.fair_share = Some(FairShareCfg::default());
        let out = simulate(&jobs, &cfg);
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            r3.start < r2.start,
            "light user's job3 ({}) should beat heavy user's job2 ({})",
            r3.start,
            r2.start
        );
        // Without fair-share, FIFO order holds.
        let plain = simulate(&jobs, &SimConfig::easy(Cluster::new(8)));
        let p2 = plain.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let p3 = plain.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(p2.start < p3.start);
    }

    #[test]
    fn fair_share_usage_decays() {
        // After a long idle gap, past usage decays away and FIFO returns.
        let mk = |id: u64, user: u32, submit_h: f64| {
            JobBuilder::new(
                id,
                SimTime::from_hours(submit_h),
                8,
                SimDuration::from_hours(1.0),
            )
            .user(user)
            .build()
        };
        // User 0 used the machine long ago (job1 at t=0); hundreds of
        // half-lives later both users submit.
        let jobs = vec![mk(1, 0, 0.0), mk(2, 0, 10_000.0), mk(3, 1, 10_000.1)];
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.fair_share = Some(FairShareCfg {
            half_life: SimDuration::from_hours(1.0),
        });
        let out = simulate(&jobs, &cfg);
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            r2.start <= r3.start,
            "decayed usage should restore FIFO: job2 {} vs job3 {}",
            r2.start,
            r3.start
        );
    }

    #[test]
    fn conservative_backfill_does_not_delay_any_reservation() {
        // Cluster 8. Job1: 6 nodes, 4 h. Job2: 8 nodes (reserved at t=4).
        // Job3: 2 nodes, walltime 8 h — EASY would backfill it into the
        // 2 spare nodes; conservative also allows it (it delays nothing:
        // job2 needs all 8 at t=4, but job3 uses spare nodes until t=4?
        // No — job3 holds 2 nodes until t≈8, which WOULD delay job2, so
        // conservative must NOT start it now).
        let jobs = vec![
            rigid(1, 0.0, 6, 4.0),
            rigid(2, 0.1, 8, 1.0),
            rigid(3, 0.2, 2, 8.0),
        ];
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::ConservativeBackfill,
                ..SimConfig::easy(Cluster::new(8))
            },
        );
        assert_eq!(out.unfinished, 0);
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            (r2.start.as_hours() - 4.0).abs() < 1e-6,
            "head reservation delayed: {}",
            r2.start
        );
        assert!(r3.start >= r2.start, "job3 jumped ahead and delayed job2");
    }

    #[test]
    fn conservative_backfills_truly_harmless_jobs() {
        // Same as above but job3 fits entirely before the shadow (1 h
        // walltime): conservative lets it in.
        let jobs = vec![
            rigid(1, 0.0, 6, 4.0),
            rigid(2, 0.1, 8, 1.0),
            rigid(3, 0.2, 2, 1.0),
        ];
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::ConservativeBackfill,
                ..SimConfig::easy(Cluster::new(8))
            },
        );
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(r3.start.as_hours() < 0.3, "harmless job not backfilled");
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        assert!((r2.start.as_hours() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn conservative_completes_random_workload() {
        let cfg_wl = sustain_workload::synth::WorkloadConfig::default();
        let jobs = sustain_workload::synth::generate(&cfg_wl, SimDuration::from_hours(48.0), 21);
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::ConservativeBackfill,
                ..SimConfig::easy(Cluster::new(600))
            },
        );
        assert_eq!(out.unfinished, 0);
        // Conservative is at least as conservative as EASY: mean wait is
        // not lower than EASY's by construction artifacts; just check
        // sanity bounds.
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
    }

    #[test]
    fn queue_priorities_reorder_pending() {
        use crate::queue::{QueueConfig, QueueSet};
        // Two queues: "fast" (small jobs, high priority) and "slow".
        let queues = QueueSet {
            queues: vec![
                QueueConfig {
                    name: "fast".into(),
                    priority: 10,
                    min_nodes: 1,
                    max_nodes: 2,
                    max_walltime: SimDuration::from_hours(100.0),
                },
                QueueConfig {
                    name: "slow".into(),
                    priority: 1,
                    min_nodes: 1,
                    max_nodes: 64,
                    max_walltime: SimDuration::from_hours(100.0),
                },
            ],
        };
        // Cluster 4 busy until t=2 with job0; then a slow 4-node job
        // (submitted first) and a fast 2-node job (submitted later)
        // compete. Priority puts the fast job first in line under FCFS.
        let jobs = vec![
            rigid(1, 0.0, 4, 2.0),
            rigid(2, 0.5, 4, 1.0),
            rigid(3, 0.6, 2, 1.0),
        ];
        let out = simulate(
            &jobs,
            &SimConfig {
                policy: Policy::Fcfs,
                queues: Some(queues),
                ..SimConfig::easy(Cluster::new(4))
            },
        );
        let r2 = out.records.iter().find(|r| r.id == JobId(2)).unwrap();
        let r3 = out.records.iter().find(|r| r.id == JobId(3)).unwrap();
        assert!(
            r3.start < r2.start,
            "high-priority job3 ({}) should start before job2 ({})",
            r3.start,
            r2.start
        );
    }

    #[test]
    fn unadmittable_jobs_rejected_by_queues() {
        use crate::queue::QueueSet;
        let queues = QueueSet::typical(64);
        // 65-node request: no queue admits it on a 64-node layout.
        let jobs = vec![rigid(1, 0.0, 65, 1.0), rigid(2, 0.0, 4, 1.0)];
        let out = simulate(
            &jobs,
            &SimConfig {
                queues: Some(queues),
                ..SimConfig::easy(Cluster::new(128))
            },
        );
        assert_eq!(out.unfinished, 1);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].id, JobId(2));
    }

    #[test]
    fn shrink_on_budget_drop() {
        // Malleable job at 8 nodes × 500 W = 4 kW; budget drops to 2 kW at
        // hour 1 → shrink to 4 nodes.
        let job = JobBuilder::new(1, SimTime::ZERO, 8, SimDuration::from_hours(4.0))
            .class(JobClass::Malleable {
                min_nodes: 2,
                max_nodes: 8,
            })
            .build();
        let mut budget = vec![5000.0];
        budget.extend(vec![2000.0; 100]);
        let series = TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), budget);
        let mut cfg = SimConfig::easy(Cluster::new(8));
        cfg.power_budget = Some(series);
        cfg.enable_malleability = true;
        let out = simulate(&[job], &cfg);
        let r = &out.records[0];
        assert!(r.reshapes >= 1, "job should shrink");
        // After the shrink it runs slower (fewer nodes) → span > 4 h.
        assert!(r.span().as_hours() > 4.0);
        // Violation window at most the tick quantization.
        assert!(out.budget_violation_seconds <= 3700.0);
        assert_eq!(out.unfinished, 0);
    }

    /// The allocation-free sweep must agree with the filter-and-sort
    /// reference on a dense grid of profiles, including duplicate event
    /// times, reservations (negative deltas), infeasible windows and
    /// events at or before `now` (which the sorted variant expects to be
    /// pre-filtered).
    #[test]
    fn earliest_slot_sorted_matches_reference() {
        let t = SimTime::from_hours;
        let d = SimDuration::from_hours;
        let patterns: &[&[(f64, i64)]] = &[
            &[],
            &[(1.0, 4)],
            &[(1.0, 2), (1.0, 2), (2.0, -4), (3.0, 4)],
            &[(0.5, -2), (0.5, 2), (1.5, 4), (1.5, -4), (4.0, 8)],
            &[(2.0, -3), (2.0, -1), (5.0, 4), (6.0, 4)],
            &[(1.0, 1), (2.0, 1), (3.0, 1), (4.0, 1), (5.0, 1)],
            &[(3.0, -8), (7.0, 8)],
        ];
        let mut cases = 0u32;
        for raw in patterns {
            for free_now in 0..6i64 {
                for alloc in 1..6i64 {
                    for dur_h in [0.25, 1.0, 2.5, 10.0] {
                        let now = t(1.0);
                        let events: Vec<(SimTime, i64)> =
                            raw.iter().map(|&(h, n)| (t(h), n)).collect();
                        // The sorted variant's contract: strictly-future
                        // events, pre-sorted, ties in insertion order —
                        // exactly what the reference's filter + stable
                        // sort produces internally.
                        let mut sorted: Vec<(SimTime, i64)> =
                            events.iter().copied().filter(|e| e.0 > now).collect();
                        sorted.sort_by_key(|e| e.0);
                        assert_eq!(
                            earliest_slot_sorted(free_now, &sorted, now, alloc, d(dur_h)),
                            earliest_slot(free_now, &events, now, alloc, d(dur_h)),
                            "pattern {raw:?} free_now={free_now} alloc={alloc} dur={dur_h}h"
                        );
                        cases += 1;
                    }
                }
            }
        }
        assert!(cases > 500);
    }

    /// `window_feasible` must agree with the slot search: on every
    /// profile in the reference grid, the returned slot is the earliest
    /// candidate whose window verifies feasible, and every earlier
    /// candidate fails verification. This is the exactness the
    /// speculative commit loop relies on.
    #[test]
    fn window_feasible_matches_slot_search_candidates() {
        let t = SimTime::from_hours;
        let d = SimDuration::from_hours;
        let patterns: &[&[(f64, i64)]] = &[
            &[],
            &[(1.0, 4)],
            &[(1.0, 2), (1.0, 2), (2.0, -4), (3.0, 4)],
            &[(0.5, -2), (0.5, 2), (1.5, 4), (1.5, -4), (4.0, 8)],
            &[(2.0, -3), (2.0, -1), (5.0, 4), (6.0, 4)],
            &[(1.0, 1), (2.0, 1), (3.0, 1), (4.0, 1), (5.0, 1)],
            &[(3.0, -8), (7.0, 8)],
        ];
        for raw in patterns {
            for free_now in 0..6i64 {
                for alloc in 1..6i64 {
                    for dur_h in [0.25, 1.0, 2.5, 10.0] {
                        let now = t(1.0);
                        let mut sorted: Vec<(SimTime, i64)> = raw
                            .iter()
                            .map(|&(h, n)| (t(h), n))
                            .filter(|e| e.0 > now)
                            .collect();
                        sorted.sort_by_key(|e| e.0);
                        let dur = d(dur_h);
                        let got = earliest_slot_sorted(free_now, &sorted, now, alloc, dur);
                        let mut candidates = vec![now];
                        candidates.extend(sorted.iter().map(|e| e.0));
                        for &c in candidates.iter().filter(|&&c| c < got) {
                            assert!(
                                !window_feasible(free_now, &sorted, c, alloc, dur),
                                "candidate {c:?} before slot {got:?} verified feasible \
                                 (pattern {raw:?} free_now={free_now} alloc={alloc})"
                            );
                        }
                        if !window_feasible(free_now, &sorted, got, alloc, dur) {
                            // Fallback slot (no feasible window at all):
                            // then no candidate may verify.
                            for &c in &candidates {
                                assert!(!window_feasible(free_now, &sorted, c, alloc, dur));
                            }
                        }
                    }
                }
            }
        }
    }

    /// The speculative parallel planner must be byte-identical to the
    /// serial one on a congested conservative-backfill scenario (the
    /// goldens and `tests/parallel_planning.rs` cover this at scale;
    /// this is the fast in-tree check that also asserts the speculative
    /// path actually ran).
    #[test]
    fn speculative_planning_is_byte_identical_to_serial() {
        let jobs: Vec<Job> = (0..160)
            .map(|i| {
                let size = 1 + (i % 7) as u32 * 2;
                let runtime = 0.5 + (i % 11) as f64 * 0.7;
                rigid(i, (i / 4) as f64 * 0.25, size.min(14), runtime)
            })
            .collect();
        let mut cfg = SimConfig::easy(Cluster::new(16));
        cfg.policy = Policy::ConservativeBackfill;

        set_par_pending_min(usize::MAX);
        let serial = simulate(&jobs, &cfg);

        // The shim's build_global just stores the count; 8 here also
        // makes the run independent of the host's core count.
        rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build_global()
            .unwrap();
        set_par_pending_min(0);
        let speculative = simulate(&jobs, &cfg);
        set_par_pending_min(PAR_PENDING_MIN_DEFAULT);

        assert!(
            speculative.hot_path.spec_planned > 0,
            "speculative phase never engaged: {:?}",
            speculative.hot_path
        );
        assert!(speculative.hot_path.spec_hits > 0, "no speculative hits");
        // A round that starts a job restarts planning and abandons the
        // rest of its speculated slots, so consumed ≤ planned.
        assert!(
            speculative.hot_path.spec_hits + speculative.hot_path.spec_invalidations
                <= speculative.hot_path.spec_planned,
            "consumed more slots than were speculated: {:?}",
            speculative.hot_path
        );
        assert_eq!(serial.records, speculative.records);
        assert_eq!(serial.unfinished, speculative.unfinished);
        assert_eq!(serial.makespan, speculative.makespan);
        assert_eq!(
            serial.budget_violation_seconds,
            speculative.budget_violation_seconds
        );
    }

    /// Steady-state scheduling skips must not change outcomes: a budget
    /// scenario that strands jobs past the end of the series ticks in a
    /// quiescent tail, and the skip counter must grow while the outcome
    /// stays byte-identical to a run with skipping disabled (the goldens
    /// lock this across the corpus; this is the fast in-tree check).
    #[test]
    fn quiescent_skips_accumulate_in_budget_tail() {
        // 4 jobs × 2 nodes × 500 W = 1 kW each; budget 1 kW admits one
        // at a time, then collapses to 100 W so the last job strands.
        let jobs: Vec<Job> = (0..4).map(|i| rigid(i, 0.0, 2, 1.0)).collect();
        let mut budget = vec![1000.0; 3];
        budget.push(100.0);
        let series = TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1.0), budget);
        let mut cfg = SimConfig::easy(Cluster::new(4));
        cfg.power_budget = Some(series);
        cfg.max_steps = 5_000;
        let out = simulate(&jobs, &cfg);
        assert_eq!(out.unfinished, 1, "last job should strand on 100 W");
        // The tail is thousands of hourly ticks at a flat budget value:
        // nearly all of them must skip the scheduling pass.
        assert!(
            out.hot_path.schedule_skips > 4_000,
            "expected a skipped tail, got {:?}",
            out.hot_path
        );
        assert!(out.hot_path.schedule_passes < 100);
        assert_eq!(out.hot_path.events, 5_001);
    }
}
