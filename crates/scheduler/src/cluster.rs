//! Cluster description and allocation bookkeeping.
//!
//! The simulator models a homogeneous cluster (the common case for a
//! single HPC system partition): what matters to the §3 policies is node
//! *count*, per-node power, and the total power envelope — not node
//! identity.

use serde::{Deserialize, Serialize};
use sustain_sim_core::hash::{CanonicalHash, CanonicalHasher};
use sustain_sim_core::units::Power;

/// Static description of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Total number of (homogeneous) nodes.
    pub nodes: u32,
    /// Power drawn by an idle (powered-on, unallocated) node.
    pub idle_node_power: Power,
}

impl Cluster {
    /// Creates a cluster.
    pub fn new(nodes: u32) -> Cluster {
        assert!(nodes > 0, "cluster needs nodes");
        Cluster {
            nodes,
            idle_node_power: Power::from_watts(120.0),
        }
    }

    /// Overrides the idle node power.
    pub fn with_idle_power(mut self, p: Power) -> Cluster {
        self.idle_node_power = p;
        self
    }
}

impl CanonicalHash for Cluster {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_u32(self.nodes);
        self.idle_node_power.canonical_hash_into(hasher);
    }
}

/// Mutable allocation state: how many nodes are free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    total: u32,
    free: u32,
}

impl Allocation {
    /// All nodes free.
    pub fn new(total: u32) -> Allocation {
        Allocation { total, free: total }
    }

    /// Free node count.
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Busy node count.
    pub fn busy(&self) -> u32 {
        self.total - self.free
    }

    /// Total node count.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Claims `n` nodes.
    ///
    /// # Panics
    /// Panics when overcommitting — the scheduler must check first.
    pub fn claim(&mut self, n: u32) {
        assert!(
            n <= self.free,
            "overcommit: claiming {n} of {} free",
            self.free
        );
        self.free -= n;
    }

    /// Releases `n` nodes.
    ///
    /// # Panics
    /// Panics when releasing more than are busy.
    pub fn release(&mut self, n: u32) {
        assert!(
            self.busy() >= n,
            "releasing {n} nodes but only {} busy",
            self.busy()
        );
        self.free += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_and_release_roundtrip() {
        let mut a = Allocation::new(10);
        assert_eq!(a.free(), 10);
        a.claim(4);
        assert_eq!(a.free(), 6);
        assert_eq!(a.busy(), 4);
        a.claim(6);
        assert_eq!(a.free(), 0);
        a.release(10);
        assert_eq!(a.free(), 10);
        assert_eq!(a.total(), 10);
    }

    #[test]
    #[should_panic(expected = "overcommit")]
    fn overcommit_panics() {
        Allocation::new(2).claim(3);
    }

    #[test]
    #[should_panic(expected = "only 0 busy")]
    fn over_release_panics() {
        Allocation::new(2).release(1);
    }

    #[test]
    fn cluster_builder() {
        let c = Cluster::new(100).with_idle_power(Power::from_watts(80.0));
        assert_eq!(c.nodes, 100);
        assert_eq!(c.idle_node_power.watts(), 80.0);
    }

    #[test]
    #[should_panic(expected = "needs nodes")]
    fn empty_cluster_rejected() {
        Cluster::new(0);
    }
}
