//! Process-wide memoization of whole scenario outcomes.
//!
//! A scenario run is a pure function of the [`Scenario`] value (which
//! includes its seed): same input, bit-identical [`ScenarioResult`].
//! The [`OutcomeCache`] exploits that purity to collapse repeated
//! identical work — a service replaying a hot `POST /run`, a sweep with
//! duplicate points, a CLI invoked twice — into one simulation plus
//! cheap clones. A cache hit is byte-equal to a cold run by
//! construction: the stored value *is* the result of a cold run.
//!
//! Cancelled and failed runs are never inserted (a partial result is not
//! the value of the pure function), and the cache-fill path carries the
//! `scenario::outcome_fill` fault site so crash-injection tests can
//! prove a failed fill leaves the cache consistent.

use crate::scenario::{Scenario, ScenarioResult};
use std::sync::{Arc, OnceLock};
use sustain_sim_core::cache::{CacheStats, LruCache};
use sustain_sim_core::error::{env_knob_usize, ConfigError};
use sustain_sim_core::hash::CanonicalHash;

/// Default capacity of the process-wide [`OutcomeCache`]. Results carry
/// full per-job records, so the bound is deliberately small.
pub const DEFAULT_OUTCOME_CACHE_CAPACITY: usize = 64;

/// Environment variable overriding the global outcome cache capacity.
/// `0` **disables** outcome memoization entirely — note this differs
/// from `SUSTAIN_TRACE_CACHE_CAP`, where `0` means unbounded; whole
/// results are too large for "no limit" to ever be sensible.
pub const OUTCOME_CACHE_CAP_ENV: &str = "SUSTAIN_OUTCOME_CACHE_CAP";

/// Cache key for a scenario outcome: the canonical content fingerprint
/// plus the master seed, kept as a separate field (the hash already
/// covers the seed; keeping it explicit makes collisions across seeds
/// structurally impossible rather than merely improbable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutcomeKey {
    scenario_fingerprint: u64,
    seed: u64,
}

impl OutcomeKey {
    /// Fingerprint a scenario run request.
    pub fn new(scenario: &Scenario) -> OutcomeKey {
        OutcomeKey {
            scenario_fingerprint: scenario.canonical_hash(),
            seed: scenario.seed,
        }
    }
}

/// Process-wide LRU cache of completed scenario results.
///
/// Capacity `0` disables caching (see [`OUTCOME_CACHE_CAP_ENV`]).
/// Lookup and insert are split so the expensive simulation — and its
/// fault site — runs outside the cache lock; racing first requests both
/// simulate, deterministically produce identical results, and the first
/// insert wins.
#[derive(Debug)]
pub struct OutcomeCache {
    inner: LruCache<OutcomeKey, Arc<ScenarioResult>>,
}

impl Default for OutcomeCache {
    fn default() -> Self {
        OutcomeCache::with_capacity(DEFAULT_OUTCOME_CACHE_CAPACITY)
    }
}

impl OutcomeCache {
    /// Create an empty cache with the default capacity bound.
    pub fn new() -> OutcomeCache {
        OutcomeCache::default()
    }

    /// Create an empty cache holding at most `capacity` results
    /// (`0` = caching disabled).
    pub fn with_capacity(capacity: usize) -> OutcomeCache {
        OutcomeCache {
            inner: LruCache::with_capacity(capacity),
        }
    }

    /// Current capacity bound (`0` = caching disabled).
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Change the capacity bound. Setting `0` disables the cache and
    /// drops all entries; a smaller bound evicts down immediately.
    pub fn set_capacity(&self, capacity: usize) {
        self.inner.set_capacity(capacity);
        if capacity == 0 {
            self.inner.clear();
        }
    }

    /// Look a completed result up; `None` when absent or when the cache
    /// is disabled. A hit refreshes the entry's LRU position.
    pub fn lookup(&self, key: &OutcomeKey) -> Option<Arc<ScenarioResult>> {
        if self.capacity() == 0 {
            return None;
        }
        self.inner.lookup(key)
    }

    /// Record a miss and insert a freshly computed result, returning the
    /// canonical cached `Arc` (the winner of any insert race). With the
    /// cache disabled the result is passed back untouched and no
    /// counters advance.
    pub fn insert(&self, key: OutcomeKey, result: Arc<ScenarioResult>) -> Arc<ScenarioResult> {
        if self.capacity() == 0 {
            return result;
        }
        self.inner.insert_after_miss(key, result)
    }

    /// Hit/miss/eviction counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all cached results, preserving the counters.
    pub fn clear(&self) {
        self.inner.clear();
    }
}

/// The process-wide [`OutcomeCache`] consulted by every
/// [`run`](crate::scenario::run) variant.
///
/// Capacity defaults to [`DEFAULT_OUTCOME_CACHE_CAPACITY`] and can be
/// overridden (first use wins) via [`OUTCOME_CACHE_CAP_ENV`], or changed
/// at runtime with [`OutcomeCache::set_capacity`].
pub fn global_outcome_cache() -> &'static OutcomeCache {
    static CACHE: OnceLock<OutcomeCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        // Lazy path: reachable from any library caller, so a malformed
        // capacity cannot surface as a `Result` here — warn loudly (once:
        // the cache is built once) and keep the default instead of
        // silently ignoring the knob. Boundary code gets the typed-error
        // behavior from [`init_outcome_cache_cap_from_env`].
        let cap = match env_knob_usize(OUTCOME_CACHE_CAP_ENV) {
            Ok(Some(cap)) => cap,
            Ok(None) => DEFAULT_OUTCOME_CACHE_CAPACITY,
            Err(e) => {
                eprintln!(
                    "warning: {e}; keeping the default outcome-cache \
                     capacity of {DEFAULT_OUTCOME_CACHE_CAPACITY}"
                );
                DEFAULT_OUTCOME_CACHE_CAPACITY
            }
        };
        OutcomeCache::with_capacity(cap)
    })
}

/// Strictly applies [`OUTCOME_CACHE_CAP_ENV`] to the process-wide cache
/// if set; returns the applied capacity. Boundary code (CLI/service
/// startup) calls this once so a malformed value becomes a typed
/// [`ConfigError`] instead of a silently-used default. Safe to call
/// whether or not the cache was already touched: the capacity is
/// (re)applied to the live cache, evicting down if needed.
pub fn init_outcome_cache_cap_from_env() -> Result<Option<usize>, ConfigError> {
    let parsed = env_knob_usize(OUTCOME_CACHE_CAP_ENV)?;
    if let Some(cap) = parsed {
        global_outcome_cache().set_capacity(cap);
    }
    Ok(parsed)
}
