//! # sustain-hpc-core
//!
//! The orchestration layer of the `sustain-hpc` workspace — the full
//! reproduction of *"Sustainability in HPC: Vision and Opportunities"*
//! (Chadha, Arima, Raoofy, Gerndt, Schulz — SC-W 2023).
//!
//! This crate wires the substrates together:
//!
//! * [`scenario`] — end-to-end runs: grid trace → power budget → scheduled
//!   workload → per-job carbon accounting → facility carbon;
//! * [`cache`] — content-addressed memoization of whole scenario results;
//! * [`experiments`] — one function per figure, table, and quantitative
//!   claim of the paper (see the table in that module's docs).
//!
//! ## Quick start
//!
//! ```
//! use sustain_hpc_core::prelude::*;
//!
//! // Regenerate Fig. 1 of the paper:
//! let rows = fig1_embodied_breakdown();
//! assert_eq!(rows.len(), 3);
//! assert!((rows[1].memory_storage_share - 0.596).abs() < 0.015);
//!
//! // Run a carbon-aware scheduling scenario on the Finnish grid:
//! let mut scenario = Scenario::baseline(
//!     "demo",
//!     RegionProfile::january_2023(Region::Finland),
//!     3,
//! );
//! scenario.cluster = Cluster::new(600);
//! let result = run(&scenario);
//! assert_eq!(result.outcome.unfinished, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod experiments;
pub mod scenario;
pub mod site;
pub mod sweep;

pub use cache::{global_outcome_cache, init_outcome_cache_cap_from_env, OutcomeCache, OutcomeKey};

pub use scenario::{run, run_with_ctl, try_run, try_run_with_ctl, Scenario, ScenarioResult};
pub use site::{lifetime_report, LifetimeCarbonReport, Site};

/// Convenience prelude: the most commonly used items across the
/// workspace.
pub mod prelude {
    pub use crate::cache::{global_outcome_cache, OutcomeCache, OutcomeKey};
    pub use crate::experiments::*;
    pub use crate::scenario::{
        run, run_with_ctl, try_run, try_run_with_ctl, Scenario, ScenarioResult,
    };
    pub use crate::site::{lifetime_report, LifetimeCarbonReport, Site};
    pub use crate::sweep::{
        calibrated_trace, set_threads, sweep, sweep_seeded, try_sweep, try_sweep_memo_with_ctl,
        try_sweep_resumable, try_sweep_resumable_retry, try_sweep_retry_with_ctl, try_sweep_seeded,
        try_sweep_seeded_with_ctl, PointError, PointRun,
    };
    pub use sustain_carbon_model::metrics::DesignMetric;
    pub use sustain_carbon_model::system::SystemInventory;
    pub use sustain_grid::green::GreenDetector;
    pub use sustain_grid::region::{Region, RegionProfile};
    pub use sustain_grid::synth::{generate_calibrated, generate_hourly};
    pub use sustain_grid::trace::CarbonTrace;
    pub use sustain_power::carbon_scaler::ScalingPolicy;
    pub use sustain_scheduler::cluster::Cluster;
    pub use sustain_scheduler::sim::{simulate, CarbonAwareCfg, CheckpointCfg, Policy, SimConfig};
    pub use sustain_sim_core::ctl::{CancelToken, Deadline, RunCtl};
    pub use sustain_sim_core::error::{ConfigError, SimError, Validate};
    pub use sustain_sim_core::retry::{RetryPolicy, RetryStats};
    pub use sustain_sim_core::time::{SimDuration, SimTime};
    pub use sustain_sim_core::units::{Carbon, CarbonIntensity, Energy, Power};
    pub use sustain_workload::job::{Job, JobBuilder, JobClass, JobId};
    pub use sustain_workload::synth::WorkloadConfig;
}
