//! Whole-site lifetime carbon analysis.
//!
//! A [`Site`] combines a hardware inventory (§2), a grid supply (§3), a
//! facility PUE, and a planned lifetime; [`lifetime_report`] produces the
//! year-by-year carbon account a procurement team would review: amortized
//! embodied vs operational, under seasonal grid structure — the numbers
//! behind the paper's "embodied dominates at LRZ" observation and the
//! Carbon500 entries.

use serde::{Deserialize, Serialize};
use sustain_carbon_model::lifecycle::{system_eol_study, SystemEolOutcome};
use sustain_carbon_model::system::SystemInventory;
use sustain_grid::region::RegionProfile;
use sustain_grid::seasonal::{generate_year, monthly_means, SeasonalShape};
use sustain_power::pue::PueModel;
use sustain_sim_core::rng::RngStream;
use sustain_sim_core::units::{Carbon, Energy};

/// A sited HPC system.
#[derive(Debug, Clone)]
pub struct Site {
    /// Site name.
    pub name: String,
    /// Hardware inventory.
    pub inventory: SystemInventory,
    /// Grid supply profile.
    pub region: RegionProfile,
    /// Seasonal structure of the supply.
    pub seasonal: SeasonalShape,
    /// Facility overhead model.
    pub pue: PueModel,
    /// Planned lifetime, years.
    pub lifetime_years: u32,
    /// Mean utilization (fraction of nominal power actually drawn).
    pub utilization: f64,
    /// Seed for the synthetic grid years.
    pub seed: u64,
}

impl Site {
    /// LRZ-like: SuperMUC-NG on the constant hydropower contract.
    pub fn lrz_like() -> Site {
        Site {
            name: "LRZ (hydropower contract)".into(),
            inventory: SystemInventory::supermuc_ng(),
            region: RegionProfile::lrz_hydropower(),
            seasonal: SeasonalShape::flat(),
            pue: PueModel::efficient_hpc(),
            lifetime_years: 5,
            utilization: 0.85,
            seed: 2023,
        }
    }

    /// The same machine on the German grid mix (thermal winter peak).
    pub fn german_grid_like() -> Site {
        Site {
            name: "German grid mix".into(),
            inventory: SystemInventory::supermuc_ng(),
            region: RegionProfile::january_2023(sustain_grid::region::Region::Germany),
            seasonal: SeasonalShape::thermal_winter_peak(),
            pue: PueModel::efficient_hpc(),
            lifetime_years: 5,
            utilization: 0.85,
            seed: 2023,
        }
    }

    /// The same machine on a constant coal supply — the paper's worst
    /// case.
    pub fn coal_like() -> Site {
        Site {
            name: "Coal supply".into(),
            inventory: SystemInventory::supermuc_ng(),
            region: RegionProfile::coal_supply(),
            seasonal: SeasonalShape::flat(),
            pue: PueModel::legacy_aircooled(),
            lifetime_years: 5,
            utilization: 0.85,
            seed: 2023,
        }
    }
}

/// One year of the lifetime report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct YearRow {
    /// Year index (0-based from commissioning).
    pub year: u32,
    /// IT energy drawn, MWh.
    pub it_energy_mwh: f64,
    /// Facility energy (PUE applied), MWh.
    pub facility_energy_mwh: f64,
    /// Mean grid intensity of the synthetic year, g/kWh.
    pub mean_ci: f64,
    /// Operational carbon, t.
    pub operational_t: f64,
    /// Amortized embodied carbon, t.
    pub amortized_embodied_t: f64,
}

/// The full lifetime report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifetimeCarbonReport {
    /// Site name.
    pub site: String,
    /// Per-year rows.
    pub years: Vec<YearRow>,
    /// Total embodied carbon (components + platform), t.
    pub embodied_t: f64,
    /// Total lifetime operational carbon, t.
    pub operational_t: f64,
    /// Embodied share of the lifetime total.
    pub embodied_share: f64,
    /// End-of-life strategy comparison (recycle / reuse / +2 yr extension).
    pub eol: SystemEolOutcome,
}

/// Builds the lifetime carbon report for a site.
pub fn lifetime_report(site: &Site) -> LifetimeCarbonReport {
    let embodied = site.inventory.total_embodied_with_platform();
    let amortized_per_year = embodied.tons() / site.lifetime_years as f64;
    let it_power = site.inventory.nominal_power * site.utilization;
    let facility_power = site.pue.facility_power(it_power);
    let root = RngStream::new(site.seed);

    // Per-year seeds are derived serially from the site seed (same
    // stream as ever), then the synthetic years fan out over the sweep
    // driver — each year is independent given its seed.
    let year_points: Vec<(u32, u64)> = (0..site.lifetime_years)
        .map(|year| {
            let mut sub = root.derive_idx(year as u64);
            (year, rand::RngCore::next_u64(&mut sub))
        })
        .collect();
    let year_results: Vec<(YearRow, Carbon)> =
        crate::sweep::sweep(&year_points, |&(year, year_seed)| {
            let trace = generate_year(&site.region, &site.seasonal, year_seed);
            // Facility energy is drawn at constant power; the carbon follows
            // the month-by-month mean intensities.
            let mut op = Carbon::ZERO;
            for (month, mean_ci) in monthly_means(&trace) {
                let hours = sustain_grid::seasonal::DAYS_PER_MONTH[month] as f64 * 24.0;
                let energy = Energy::from_kwh(facility_power.kw() * hours);
                op += Carbon::from_grams(energy.kwh() * mean_ci);
            }
            let hours_per_year = 8760.0;
            let row = YearRow {
                year,
                it_energy_mwh: it_power.kw() * hours_per_year / 1000.0,
                facility_energy_mwh: facility_power.kw() * hours_per_year / 1000.0,
                mean_ci: trace.series().stats().mean(),
                operational_t: op.tons(),
                amortized_embodied_t: amortized_per_year,
            };
            (row, op)
        });
    let mut years = Vec::with_capacity(site.lifetime_years as usize);
    let mut operational_total = Carbon::ZERO;
    for (row, op) in year_results {
        operational_total += op;
        years.push(row);
    }

    let total = embodied.tons() + operational_total.tons();
    LifetimeCarbonReport {
        site: site.name.clone(),
        years,
        embodied_t: embodied.tons(),
        operational_t: operational_total.tons(),
        embodied_share: if total > 0.0 {
            embodied.tons() / total
        } else {
            0.0
        },
        eol: system_eol_study(&site.inventory, site.lifetime_years as f64, 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The §2 claim, now through the full seasonal pipeline: embodied
    /// dominates at LRZ, vanishes next to coal operations.
    #[test]
    fn embodied_share_orders_sites() {
        let lrz = lifetime_report(&Site::lrz_like());
        let german = lifetime_report(&Site::german_grid_like());
        let coal = lifetime_report(&Site::coal_like());
        assert!(
            lrz.embodied_share > 0.5,
            "LRZ embodied share {}",
            lrz.embodied_share
        );
        assert!(coal.embodied_share < 0.05, "coal {}", coal.embodied_share);
        assert!(lrz.embodied_share > german.embodied_share);
        assert!(german.embodied_share > coal.embodied_share);
    }

    #[test]
    fn report_has_one_row_per_year_and_consistent_totals() {
        let r = lifetime_report(&Site::lrz_like());
        assert_eq!(r.years.len(), 5);
        let op_sum: f64 = r.years.iter().map(|y| y.operational_t).sum();
        assert!((op_sum - r.operational_t).abs() < 1e-6 * op_sum.max(1.0));
        let amort_sum: f64 = r.years.iter().map(|y| y.amortized_embodied_t).sum();
        assert!((amort_sum - r.embodied_t).abs() < 1e-6 * r.embodied_t);
        for y in &r.years {
            assert!(y.facility_energy_mwh > y.it_energy_mwh);
        }
    }

    #[test]
    fn constant_supply_years_have_constant_ci() {
        let r = lifetime_report(&Site::lrz_like());
        for y in &r.years {
            assert!((y.mean_ci - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn seasonal_supply_varies_across_years() {
        let r = lifetime_report(&Site::german_grid_like());
        let first = r.years[0].operational_t;
        // Different synthetic years differ (different seeds), but stay in a
        // plausible band.
        for y in &r.years {
            assert!((y.operational_t - first).abs() < 0.3 * first);
        }
    }

    #[test]
    fn report_is_deterministic() {
        let a = lifetime_report(&Site::lrz_like());
        let b = lifetime_report(&Site::lrz_like());
        assert_eq!(a.operational_t, b.operational_t);
        assert_eq!(a.embodied_share, b.embodied_share);
    }
}
