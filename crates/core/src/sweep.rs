//! Shared sweep driver for the experiment suite.
//!
//! Every experiment in this workspace is a *sweep*: a list of points
//! (thresholds, regions, policies, years, …) mapped independently to
//! result rows. This module provides the single implementation behind
//! all of them:
//!
//! * [`sweep`] fans the points out over the Rayon thread pool. The
//!   pool's `collect` reassembles results in input order, so a parallel
//!   sweep is **bit-for-bit identical** to a serial run regardless of
//!   thread count (asserted in `tests/sweep_determinism.rs`).
//! * [`sweep_seeded`] additionally derives one deterministic sub-seed
//!   per point from a master seed — a SplitMix-seeded xoshiro stream
//!   from [`sustain_sim_core::rng`], keyed by the point index — for
//!   experiments whose points need independent randomness. The
//!   derivation is pre-computed serially, so the seed a point receives
//!   never depends on scheduling.
//! * [`calibrated_trace`] resolves a `(region profile, days, seed)` key
//!   through the process-wide [`TraceCache`], so a sweep whose points
//!   share a grid window synthesizes and calibrates that trace exactly
//!   once instead of once per point.
//!
//! The worker thread count is controlled by [`set_threads`] (the CLI's
//! `--threads` flag) or the [`THREADS_ENV`] environment variable; `0`
//! or unset means "use all available hardware parallelism".
//!
//! That count is a single **process-wide worker budget**, not a
//! per-call-site pool size: every parallel pipeline (the sweep fan-out
//! here, the speculative planning pass inside `scheduler::sim`) leases
//! spare workers from the same budget and runs inline when none are
//! left. A sweep of N scenarios that each trigger in-scenario
//! parallelism therefore never runs more than the budgeted number of
//! worker threads — nesting degrades to serial execution instead of
//! oversubscribing the host (asserted in the vendored `rayon` shim's
//! `nested_pipelines_share_the_budget_and_stay_ordered` test).

use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use sustain_grid::region::RegionProfile;
use sustain_grid::synth::generate_calibrated_arc;
use sustain_grid::trace::CarbonTrace;
use sustain_sim_core::error::{env_knob_usize, ConfigError, SimError};
use sustain_sim_core::rng::RngStream;

use rayon::prelude::*;

pub use sustain_grid::synth::{
    global_trace_cache, init_trace_cache_cap_from_env, CacheStats, TraceCache, TraceKey,
};

/// Environment variable that sets the sweep worker-thread count
/// (equivalent to the CLI's `--threads`). `0` = hardware parallelism.
pub const THREADS_ENV: &str = "SUSTAIN_THREADS";

/// Fallible [`set_threads`]: applies the worker-thread count and
/// propagates a pool-reconfiguration failure as a typed
/// [`ConfigError`]. A long-running process (the service front-end)
/// must use this path — a swallowed failure would silently keep a
/// stale thread count for the rest of its lifetime.
pub fn try_set_threads(n: usize) -> Result<(), ConfigError> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .map_err(|e| {
            ConfigError::new(
                "sweep",
                "threads",
                format!("failed to apply worker-thread count {n}: {e}"),
            )
        })
}

/// Sets the number of worker threads used by all subsequent sweeps.
/// `0` restores the default (all available hardware parallelism).
/// `1` forces fully serial, in-thread execution.
///
/// The vendored pool has no persistent workers to rebuild, so
/// reconfiguration cannot currently fail; should a future upstream
/// error occur, it is logged loudly to stderr (the previous count stays
/// in effect) instead of being discarded. Callers that need to *react*
/// to the failure use [`try_set_threads`].
pub fn set_threads(n: usize) {
    if let Err(e) = try_set_threads(n) {
        eprintln!("warning: {e}; the previous thread count stays in effect");
    }
}

/// Number of worker threads sweeps will currently use.
pub fn effective_threads() -> usize {
    rayon::current_num_threads()
}

/// Applies [`THREADS_ENV`] if set; returns the applied count. Call once
/// at process start; an explicit `--threads` flag should be applied
/// after this and wins.
///
/// An unparseable value (`two`, `-1`, `1.5`) is a hard, typed error —
/// the operator asked for a specific thread count and must not silently
/// get all cores instead.
pub fn init_threads_from_env() -> Result<Option<usize>, ConfigError> {
    match env_knob_usize(THREADS_ENV)? {
        Some(n) => {
            try_set_threads(n)?;
            Ok(Some(n))
        }
        None => Ok(None),
    }
}

/// Maps every point to a row in parallel, preserving input order.
///
/// The output is exactly `points.iter().map(f).collect()` — same rows,
/// same order, bit-for-bit — for every thread count, because the pool
/// reassembles chunk results by index before returning.
pub fn sweep<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    points.par_iter().map(f).collect()
}

/// The deterministic sub-seed [`sweep_seeded`] hands to point `index`
/// under `master_seed`. Exposed so tests and callers that unroll a
/// sweep manually can reproduce the exact per-point seeds.
pub fn point_seed(master_seed: u64, index: u64) -> u64 {
    let mut stream = RngStream::new(master_seed).derive_idx(index);
    rand::RngCore::next_u64(&mut stream)
}

/// Like [`sweep`], but each point also receives an independent
/// deterministic sub-seed derived from `master_seed` and its index
/// (see [`point_seed`]). Use this for sweeps whose points must draw
/// *different* randomness; sweeps that deliberately share one master
/// seed across points (paired comparisons) should keep passing it
/// through [`sweep`] unchanged.
pub fn sweep_seeded<P, R, F>(master_seed: u64, points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> R + Sync,
{
    let seeds: Vec<u64> = (0..points.len() as u64)
        .map(|i| point_seed(master_seed, i))
        .collect();
    (0..points.len())
        .into_par_iter()
        .map(|i| f(&points[i], seeds[i]))
        .collect()
}

/// Structured failure of one sweep point, produced by [`try_sweep`] /
/// [`try_sweep_seeded`] when the point's closure panics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointError {
    /// Index of the failed point in the input slice.
    pub index: usize,
    /// Rendered panic payload (the `panic!`/`assert!` message, or a
    /// placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep point {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PointError {}

impl From<PointError> for SimError {
    fn from(e: PointError) -> SimError {
        SimError::Faulted {
            unit: format!("sweep point {}", e.index),
            message: e.message,
        }
    }
}

/// Renders a caught panic payload: `&str` and `String` payloads (the
/// output of `panic!`/`assert!` with a message) are preserved verbatim.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-isolated [`sweep`]: each point runs inside
/// `catch_unwind(AssertUnwindSafe(..))`, so one poisoned point yields a
/// per-point [`PointError`] while every other point completes. Results
/// come back in input order (same order-preserving pool as [`sweep`]),
/// so a run with no failing points is bit-for-bit identical to
/// `sweep(points, f).into_iter().map(Ok).collect()`.
///
/// The default panic hook still prints the panic message of a caught
/// point to stderr; install a quiet hook if that noise matters.
pub fn try_sweep<P, R, F>(points: &[P], f: F) -> Vec<Result<R, PointError>>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    (0..points.len())
        .into_par_iter()
        .map(|index| {
            catch_unwind(AssertUnwindSafe(|| f(&points[index]))).map_err(|payload| PointError {
                index,
                message: panic_message(payload),
            })
        })
        .collect()
}

/// Fault-isolated [`sweep_seeded`]: per-point deterministic sub-seeds
/// (identical to [`sweep_seeded`]'s, see [`point_seed`]) plus the
/// per-point panic isolation of [`try_sweep`].
pub fn try_sweep_seeded<P, R, F>(master_seed: u64, points: &[P], f: F) -> Vec<Result<R, PointError>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> R + Sync,
{
    let seeds: Vec<u64> = (0..points.len() as u64)
        .map(|i| point_seed(master_seed, i))
        .collect();
    (0..points.len())
        .into_par_iter()
        .map(|index| {
            catch_unwind(AssertUnwindSafe(|| f(&points[index], seeds[index]))).map_err(|payload| {
                PointError {
                    index,
                    message: panic_message(payload),
                }
            })
        })
        .collect()
}

/// Calibrated carbon trace for `(profile, days, seed)`, served from the
/// process-wide [`TraceCache`]: the first caller generates and
/// calibrates, every later caller (any thread) gets the same `Arc`.
///
/// # Panics
/// Calibration rescales the spread of *daily means*, so `days` must be
/// at least 2 (a single day has no daily-mean variance to scale).
pub fn calibrated_trace(profile: &RegionProfile, days: usize, seed: u64) -> Arc<CarbonTrace> {
    generate_calibrated_arc(profile, days, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_grid::region::Region;

    #[test]
    fn sweep_matches_serial_map() {
        let points: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| (x * x).wrapping_mul(0x9E37_79B9) as f64 / 7.0;
        let serial: Vec<f64> = points.iter().map(f).collect();
        let parallel = sweep(&points, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_seeded_is_deterministic_and_seeds_differ() {
        let points = ["a", "b", "c", "d"];
        let first = sweep_seeded(42, &points, |p, seed| (p.to_string(), seed));
        let second = sweep_seeded(42, &points, |p, seed| (p.to_string(), seed));
        assert_eq!(first, second);
        for (i, (label, seed)) in first.iter().enumerate() {
            assert_eq!(label, points[i]);
            assert_eq!(*seed, point_seed(42, i as u64));
        }
        let mut seeds: Vec<u64> = first.iter().map(|(_, s)| *s).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), points.len(), "per-point seeds must differ");
        let other = sweep_seeded(43, &points, |_, seed| seed);
        assert_ne!(other, first.iter().map(|(_, s)| *s).collect::<Vec<_>>());
    }

    #[test]
    fn try_sweep_isolates_panicking_points() {
        let points: Vec<u64> = (0..9).collect();
        let results = try_sweep(&points, |&x| {
            assert!(x != 4, "injected failure at four");
            x * 10
        });
        assert_eq!(results.len(), points.len());
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.index, 4);
                assert!(err.message.contains("injected failure"), "{err}");
            } else {
                assert_eq!(*r, Ok(i as u64 * 10));
            }
        }
    }

    #[test]
    fn try_sweep_matches_sweep_when_nothing_panics() {
        let points: Vec<u64> = (0..64).collect();
        let f = |&x: &u64| (x * x).wrapping_mul(0x9E37_79B9) as f64 / 7.0;
        let plain = sweep(&points, f);
        let tried = try_sweep(&points, f);
        assert_eq!(
            tried.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
            plain
        );
    }

    #[test]
    fn try_sweep_seeded_uses_same_seeds_and_isolates() {
        let points = ["a", "b", "c"];
        let results = try_sweep_seeded(42, &points, |p, seed| {
            assert!(*p != "b", "poisoned point");
            seed
        });
        assert_eq!(results[0], Ok(point_seed(42, 0)));
        assert!(results[1].is_err());
        assert_eq!(results[2], Ok(point_seed(42, 2)));
        let again = try_sweep_seeded(42, &points, |p, seed| {
            assert!(*p != "b", "poisoned point");
            seed
        });
        assert_eq!(results, again, "fault isolation must stay deterministic");
    }

    #[test]
    fn point_error_converts_to_sim_error() {
        let e = PointError {
            index: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "sweep point 7 panicked: boom");
        let s: SimError = e.into();
        assert!(s.to_string().contains("sweep point 7"));
    }

    #[test]
    fn calibrated_trace_is_cached() {
        let profile = RegionProfile::january_2023(Region::Sweden);
        let a = calibrated_trace(&profile, 3, 99);
        let b = calibrated_trace(&profile, 3, 99);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn thread_knob_roundtrips() {
        // Note: global state; other tests' *results* are unaffected by
        // the thread count (order-preserving pool), only their speed.
        set_threads(3);
        assert_eq!(effective_threads(), 3);
        try_set_threads(2).unwrap();
        assert_eq!(effective_threads(), 2);
        set_threads(0);
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn env_init_accepts_absent_or_valid_knob_only() {
        // The process environment is shared across the test binary, so
        // only assert properties that hold for whatever SUSTAIN_THREADS
        // the runner exported: absent → Ok(None); a valid integer →
        // Ok(Some(n)). The rejection of malformed values is asserted in
        // the subprocess CLI tests (tests/cli.rs), where the environment
        // is controlled per invocation.
        match std::env::var(THREADS_ENV) {
            Err(_) => assert_eq!(init_threads_from_env(), Ok(None)),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) => assert_eq!(init_threads_from_env(), Ok(Some(n))),
                Err(_) => assert!(init_threads_from_env().is_err()),
            },
        }
    }
}
