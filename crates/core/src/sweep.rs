//! Shared sweep driver for the experiment suite.
//!
//! Every experiment in this workspace is a *sweep*: a list of points
//! (thresholds, regions, policies, years, …) mapped independently to
//! result rows. This module provides the single implementation behind
//! all of them:
//!
//! * [`sweep`] fans the points out over the Rayon thread pool. The
//!   pool's `collect` reassembles results in input order, so a parallel
//!   sweep is **bit-for-bit identical** to a serial run regardless of
//!   thread count (asserted in `tests/sweep_determinism.rs`).
//! * [`sweep_seeded`] additionally derives one deterministic sub-seed
//!   per point from a master seed — a SplitMix-seeded xoshiro stream
//!   from [`sustain_sim_core::rng`], keyed by the point index — for
//!   experiments whose points need independent randomness. The
//!   derivation is pre-computed serially, so the seed a point receives
//!   never depends on scheduling.
//! * [`try_sweep_retry_with_ctl`] / [`try_sweep_resumable_retry`] add
//!   the self-healing layer (DESIGN.md §11): transiently-failed points
//!   re-execute under a deterministic [`RetryPolicy`], and points that
//!   exhaust their attempts are quarantined as journal tombstones so a
//!   resume never re-runs known-poison work unless `--retry-failed`
//!   asks it to.
//! * [`calibrated_trace`] resolves a `(region profile, days, seed)` key
//!   through the process-wide [`TraceCache`], so a sweep whose points
//!   share a grid window synthesizes and calibrates that trace exactly
//!   once instead of once per point.
//!
//! The worker thread count is controlled by [`set_threads`] (the CLI's
//! `--threads` flag) or the [`THREADS_ENV`] environment variable; `0`
//! or unset means "use all available hardware parallelism".
//!
//! That count is a single **process-wide worker budget**, not a
//! per-call-site pool size: every parallel pipeline (the sweep fan-out
//! here, the speculative planning pass inside `scheduler::sim`) leases
//! spare workers from the same budget and runs inline when none are
//! left. A sweep of N scenarios that each trigger in-scenario
//! parallelism therefore never runs more than the budgeted number of
//! worker threads — nesting degrades to serial execution instead of
//! oversubscribing the host (asserted in the vendored `rayon` shim's
//! `nested_pipelines_share_the_budget_and_stay_ordered` test).

use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::File;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use sustain_grid::region::RegionProfile;
use sustain_grid::synth::generate_calibrated_arc;
use sustain_grid::trace::CarbonTrace;
use sustain_sim_core::ctl::RunCtl;
use sustain_sim_core::error::{env_knob_usize, ConfigError, SimError};
use sustain_sim_core::hash::CanonicalHash;
use sustain_sim_core::retry::{self, RetryPolicy};
use sustain_sim_core::rng::RngStream;
use sustain_sim_core::time::SimTime;

use rayon::prelude::*;

pub use sustain_grid::synth::{
    global_trace_cache, init_trace_cache_cap_from_env, CacheStats, TraceCache, TraceKey,
};

/// Environment variable that sets the sweep worker-thread count
/// (equivalent to the CLI's `--threads`). `0` = hardware parallelism.
pub const THREADS_ENV: &str = "SUSTAIN_THREADS";

/// Fallible [`set_threads`]: applies the worker-thread count and
/// propagates a pool-reconfiguration failure as a typed
/// [`ConfigError`]. A long-running process (the service front-end)
/// must use this path — a swallowed failure would silently keep a
/// stale thread count for the rest of its lifetime.
pub fn try_set_threads(n: usize) -> Result<(), ConfigError> {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .map_err(|e| {
            ConfigError::new(
                "sweep",
                "threads",
                format!("failed to apply worker-thread count {n}: {e}"),
            )
        })
}

/// Sets the number of worker threads used by all subsequent sweeps.
/// `0` restores the default (all available hardware parallelism).
/// `1` forces fully serial, in-thread execution.
///
/// The vendored pool has no persistent workers to rebuild, so
/// reconfiguration cannot currently fail; should a future upstream
/// error occur, it is logged loudly to stderr (the previous count stays
/// in effect) instead of being discarded. Callers that need to *react*
/// to the failure use [`try_set_threads`].
pub fn set_threads(n: usize) {
    if let Err(e) = try_set_threads(n) {
        eprintln!("warning: {e}; the previous thread count stays in effect");
    }
}

/// Number of worker threads sweeps will currently use.
pub fn effective_threads() -> usize {
    rayon::current_num_threads()
}

/// Applies [`THREADS_ENV`] if set; returns the applied count. Call once
/// at process start; an explicit `--threads` flag should be applied
/// after this and wins.
///
/// An unparseable value (`two`, `-1`, `1.5`) is a hard, typed error —
/// the operator asked for a specific thread count and must not silently
/// get all cores instead.
pub fn init_threads_from_env() -> Result<Option<usize>, ConfigError> {
    match env_knob_usize(THREADS_ENV)? {
        Some(n) => {
            try_set_threads(n)?;
            Ok(Some(n))
        }
        None => Ok(None),
    }
}

/// Maps every point to a row in parallel, preserving input order.
///
/// The output is exactly `points.iter().map(f).collect()` — same rows,
/// same order, bit-for-bit — for every thread count, because the pool
/// reassembles chunk results by index before returning.
pub fn sweep<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    points.par_iter().map(f).collect()
}

/// The deterministic sub-seed [`sweep_seeded`] hands to point `index`
/// under `master_seed`. Exposed so tests and callers that unroll a
/// sweep manually can reproduce the exact per-point seeds.
pub fn point_seed(master_seed: u64, index: u64) -> u64 {
    let mut stream = RngStream::new(master_seed).derive_idx(index);
    rand::RngCore::next_u64(&mut stream)
}

/// Like [`sweep`], but each point also receives an independent
/// deterministic sub-seed derived from `master_seed` and its index
/// (see [`point_seed`]). Use this for sweeps whose points must draw
/// *different* randomness; sweeps that deliberately share one master
/// seed across points (paired comparisons) should keep passing it
/// through [`sweep`] unchanged.
pub fn sweep_seeded<P, R, F>(master_seed: u64, points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> R + Sync,
{
    let seeds: Vec<u64> = (0..points.len() as u64)
        .map(|i| point_seed(master_seed, i))
        .collect();
    (0..points.len())
        .into_par_iter()
        .map(|i| f(&points[i], seeds[i]))
        .collect()
}

/// Structured failure of one sweep point, produced by [`try_sweep`] /
/// [`try_sweep_seeded`] when the point's closure panics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointError {
    /// Index of the failed point in the input slice.
    pub index: usize,
    /// Rendered panic payload (the `panic!`/`assert!` message, or a
    /// placeholder for non-string payloads).
    pub message: String,
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep point {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PointError {}

impl From<PointError> for SimError {
    fn from(e: PointError) -> SimError {
        SimError::Faulted {
            unit: format!("sweep point {}", e.index),
            message: e.message,
        }
    }
}

/// Renders a caught panic payload: `&str` and `String` payloads (the
/// output of `panic!`/`assert!` with a message) are preserved verbatim.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fault-isolated [`sweep`]: each point runs inside
/// `catch_unwind(AssertUnwindSafe(..))`, so one poisoned point yields a
/// per-point [`PointError`] while every other point completes. Results
/// come back in input order (same order-preserving pool as [`sweep`]),
/// so a run with no failing points is bit-for-bit identical to
/// `sweep(points, f).into_iter().map(Ok).collect()`.
///
/// The default panic hook still prints the panic message of a caught
/// point to stderr; install a quiet hook if that noise matters.
pub fn try_sweep<P, R, F>(points: &[P], f: F) -> Vec<Result<R, PointError>>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    (0..points.len())
        .into_par_iter()
        .map(|index| {
            catch_unwind(AssertUnwindSafe(|| f(&points[index]))).map_err(|payload| PointError {
                index,
                message: panic_message(payload),
            })
        })
        .collect()
}

/// Fault-isolated [`sweep_seeded`]: per-point deterministic sub-seeds
/// (identical to [`sweep_seeded`]'s, see [`point_seed`]) plus the
/// per-point panic isolation of [`try_sweep`].
pub fn try_sweep_seeded<P, R, F>(master_seed: u64, points: &[P], f: F) -> Vec<Result<R, PointError>>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> R + Sync,
{
    let seeds: Vec<u64> = (0..points.len() as u64)
        .map(|i| point_seed(master_seed, i))
        .collect();
    (0..points.len())
        .into_par_iter()
        .map(|index| {
            catch_unwind(AssertUnwindSafe(|| f(&points[index], seeds[index]))).map_err(|payload| {
                PointError {
                    index,
                    message: panic_message(payload),
                }
            })
        })
        .collect()
}

/// Runs one point body under the sweep's fault boundary: the
/// `sweep::point` fault site, then `catch_unwind` so a panic (organic
/// or injected) becomes a typed [`SimError::Faulted`] for this point
/// while every other point completes.
fn run_point<R>(index: usize, body: impl FnOnce() -> Result<R, SimError>) -> Result<R, SimError> {
    match catch_unwind(AssertUnwindSafe(|| {
        sustain_sim_core::faultpoint!(infallible "sweep::point");
        body()
    })) {
        Ok(result) => result,
        Err(payload) => Err(SimError::from(PointError {
            index,
            message: panic_message(payload),
        })),
    }
}

/// Builds the outer [`SimError::Cancelled`] for a cancelled sweep,
/// appending partial-progress stats to the reason. `at_sim_time` is
/// zero: the sweep clock, not any single point's simulation clock.
fn sweep_cancelled(reason: String, completed: usize, total: usize) -> SimError {
    SimError::Cancelled {
        at_sim_time: SimTime::ZERO,
        reason: format!("{reason}; {completed}/{total} sweep points completed"),
    }
}

/// Cancellable [`try_sweep_seeded`]: per-point deterministic sub-seeds
/// and fault isolation, plus a cooperative cancellation control checked
/// before every point (points already in flight finish or observe `ctl`
/// themselves via the bucket checks inside the simulation loop).
///
/// The closure is fallible so each point can propagate its own typed
/// [`SimError`] (a per-point cancellation, a validation failure) into
/// its slot; panics are still caught and become
/// [`SimError::Faulted`]. On cancellation the whole call returns
/// [`SimError::Cancelled`] whose reason carries how many points
/// completed. With an unlimited control and no failures this is
/// bit-for-bit `try_sweep_seeded` modulo the error type.
pub fn try_sweep_seeded_with_ctl<P, R, F>(
    master_seed: u64,
    points: &[P],
    ctl: &RunCtl,
    f: F,
) -> Result<Vec<Result<R, SimError>>, SimError>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> Result<R, SimError> + Sync,
{
    let seeds: Vec<u64> = (0..points.len() as u64)
        .map(|i| point_seed(master_seed, i))
        .collect();
    let completed = AtomicUsize::new(0);
    let results: Vec<Result<R, SimError>> = (0..points.len())
        .into_par_iter()
        .map(|index| {
            if let Some(reason) = ctl.cancelled_reason() {
                return Err(SimError::Cancelled {
                    at_sim_time: SimTime::ZERO,
                    reason,
                });
            }
            let result = run_point(index, || f(&points[index], seeds[index]));
            if result.is_ok() {
                completed.fetch_add(1, Ordering::Relaxed);
            }
            result
        })
        .collect();
    match ctl.cancelled_reason() {
        Some(reason) => Err(sweep_cancelled(
            reason,
            completed.load(Ordering::Relaxed),
            points.len(),
        )),
        None => Ok(results),
    }
}

/// One point's outcome from a retrying sweep driver: the final result
/// plus how many attempts it took to get there.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRun<R> {
    /// The point's final result after retries (the last error when the
    /// attempt budget was exhausted).
    pub result: Result<R, SimError>,
    /// Executed attempts: `1` = first-try success, `> 1` = healed or
    /// exhausted after retries, `0` = never ran (pre-cancelled, or
    /// replayed/skipped from a journal).
    pub attempts: usize,
}

/// Self-healing [`try_sweep_seeded_with_ctl`]: each point runs under
/// `policy`, re-executing [`sustain_sim_core::error::Transience::Transient`]
/// failures (injected faults, caught panics) with deterministic
/// backoff jittered from the point's own derived seed — so the retry
/// schedule, like the results, replays bit-for-bit.
///
/// Because point functions are pure in `(point, seed)` — the same
/// contract the memoization layer's canonical-hash dedup relies on — a
/// successful retry is byte-identical to a first-try success: with all
/// faults transient and enough attempts, the output equals the
/// fault-free run's exactly (asserted in `tests/self_healing.rs`).
///
/// `ctl` is honored between attempts and mid-backoff; `Cancelled` and
/// permanent errors are never retried. Per-point attempt counts come
/// back in [`PointRun`].
pub fn try_sweep_retry_with_ctl<P, R, F>(
    master_seed: u64,
    points: &[P],
    ctl: &RunCtl,
    policy: &RetryPolicy,
    f: F,
) -> Result<Vec<PointRun<R>>, SimError>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> Result<R, SimError> + Sync,
{
    let seeds: Vec<u64> = (0..points.len() as u64)
        .map(|i| point_seed(master_seed, i))
        .collect();
    let completed = AtomicUsize::new(0);
    let runs: Vec<PointRun<R>> = (0..points.len())
        .into_par_iter()
        .map(|index| {
            let (result, attempts) = retry::run_with_retry(policy, seeds[index], ctl, || {
                run_point(index, || f(&points[index], seeds[index]))
            });
            if result.is_ok() {
                completed.fetch_add(1, Ordering::Relaxed);
            }
            PointRun { result, attempts }
        })
        .collect();
    match ctl.cancelled_reason() {
        Some(reason) => Err(sweep_cancelled(
            reason,
            completed.load(Ordering::Relaxed),
            points.len(),
        )),
        None => Ok(runs),
    }
}

/// Content-addressed variant of [`try_sweep_seeded_with_ctl`] for pure
/// point functions: duplicate points collapse to one computation.
///
/// The driver fingerprints every point with [`CanonicalHash`] up front,
/// computes only the first occurrence of each distinct fingerprint (in
/// parallel, with the same `sweep::point` fault boundary and per-point
/// cancellation checks), then fans each result back out to every slot
/// that shares the fingerprint — output order is exactly input order,
/// and unique points produce bit-identical results to the non-memo
/// driver.
///
/// Unlike the seeded drivers, `f` receives **no** per-point sub-seed:
/// deduplicating by content is only sound when the point value is the
/// entire input (any seed must already be baked into `P`, as
/// `service::sweep_scenarios` does). Duplicate slots of a *failed*
/// representative share its error verbatim.
pub fn try_sweep_memo_with_ctl<P, R, F>(
    points: &[P],
    ctl: &RunCtl,
    f: F,
) -> Result<Vec<Result<R, SimError>>, SimError>
where
    P: Sync + CanonicalHash,
    R: Send + Clone,
    F: Fn(&P) -> Result<R, SimError> + Sync,
{
    // Fingerprint serially (hashing is trivial next to a point run) and
    // pick the first slot of each distinct fingerprint as representative.
    let fingerprints: Vec<u64> = points.iter().map(|p| p.canonical_hash()).collect();
    let mut representative: HashMap<u64, usize> = HashMap::new();
    let mut unique: Vec<usize> = Vec::new();
    for (index, &fp) in fingerprints.iter().enumerate() {
        representative.entry(fp).or_insert_with(|| {
            unique.push(index);
            index
        });
    }

    let unique_results: Vec<Result<R, SimError>> = unique
        .par_iter()
        .map(|&index| {
            if let Some(reason) = ctl.cancelled_reason() {
                return Err(SimError::Cancelled {
                    at_sim_time: SimTime::ZERO,
                    reason,
                });
            }
            run_point(index, || f(&points[index]))
        })
        .collect();
    let by_rep: HashMap<usize, &Result<R, SimError>> =
        unique.iter().copied().zip(unique_results.iter()).collect();

    // Fan back out in input order; duplicates clone their representative.
    let results: Vec<Result<R, SimError>> = fingerprints
        .iter()
        .map(|fp| {
            let rep = representative[fp];
            // Every representative is in the map by construction.
            by_rep[&rep].clone()
        })
        .collect();
    match ctl.cancelled_reason() {
        Some(reason) => {
            let completed = results.iter().filter(|r| r.is_ok()).count();
            Err(sweep_cancelled(reason, completed, points.len()))
        }
        None => Ok(results),
    }
}

// ---------------------------------------------------------------------------
// Crash-resumable sweeps: the checkpoint journal
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit, used to fingerprint journaled point payloads. Stable
/// across platforms and already the idiom used by the trace cache key.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn journal_io_error(action: &str, err: impl std::fmt::Display) -> SimError {
    SimError::Faulted {
        unit: "sweep journal".to_string(),
        message: format!("{action}: {err}"),
    }
}

/// Appends one journal record — a completed point (`body_key =
/// "payload"`) or a quarantine tombstone (`body_key = "tombstone"`,
/// with the attempt count it burned) — and fsyncs it: the line is only
/// trusted on replay if its hash (over the body JSON) matches, so a
/// torn final line from a crash mid-write is detected and re-run,
/// never half-replayed.
fn append_journal_record(
    file: &Mutex<File>,
    index: usize,
    seed: u64,
    body_key: &str,
    body: Value,
    attempts: Option<usize>,
) -> Result<(), SimError> {
    // Fault sites fire before taking the lock: a panic-mode fault must
    // not poison the file mutex other points still append through.
    sustain_sim_core::faultpoint!("sweep::journal_write").map_err(SimError::from)?;
    let body_json = serde_json::to_string(&body)
        .map_err(|e| journal_io_error("serializing journal payload", e))?;
    let mut fields = vec![
        ("index".to_string(), Value::U64(index as u64)),
        ("seed".to_string(), Value::U64(seed)),
        (
            "hash".to_string(),
            Value::Str(format!("{:016x}", fnv1a_64(body_json.as_bytes()))),
        ),
        (body_key.to_string(), body),
    ];
    if let Some(n) = attempts {
        fields.push(("attempts".to_string(), Value::U64(n as u64)));
    }
    let line = serde_json::to_string(&Value::Object(fields))
        .map_err(|e| journal_io_error("serializing journal entry", e))?;
    sustain_sim_core::faultpoint!("sweep::journal_sync").map_err(SimError::from)?;
    let mut guard = file.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    guard
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| journal_io_error("appending journal line", e))?;
    guard
        .sync_data()
        .map_err(|e| journal_io_error("fsyncing journal", e))
}

/// Appends one completed point to the journal (see
/// [`append_journal_record`]).
fn append_journal_entry(
    file: &Mutex<File>,
    index: usize,
    seed: u64,
    payload: Value,
) -> Result<(), SimError> {
    append_journal_record(file, index, seed, "payload", payload, None)
}

/// What a validated journal line resolves to on replay.
#[derive(Debug)]
enum ReplayedSlot<R> {
    /// A completed point: the row replays verbatim.
    Row(R),
    /// A quarantined point: the recorded terminal error and the
    /// attempts it burned before being tombstoned.
    Tombstone { error: SimError, attempts: usize },
}

/// One validated line of the journal: either a completed-point record
/// (`"payload"`) or a quarantine tombstone (`"tombstone"`). Both are
/// validated identically — index range, derived-seed match, body hash —
/// so a tombstone from a foreign journal is rejected exactly like a
/// corrupt row.
fn parse_journal_line<R: Deserialize>(
    line: &str,
    points_len: usize,
    seeds: &[u64],
) -> Result<(usize, ReplayedSlot<R>), String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("unparseable JSON: {e}"))?;
    let index = value["index"]
        .as_u64()
        .ok_or("missing or non-integer \"index\"")? as usize;
    if index >= points_len {
        return Err(format!(
            "point index {index} out of range for a {points_len}-point sweep"
        ));
    }
    let seed = value["seed"]
        .as_u64()
        .ok_or("missing or non-integer \"seed\"")?;
    if seed != seeds[index] {
        return Err(format!(
            "seed {seed} at point {index} does not match this sweep's derived seed \
             {} — the journal belongs to a different sweep",
            seeds[index]
        ));
    }
    let hash = value["hash"].as_str().ok_or("missing \"hash\"")?;
    let (body, is_tombstone) = match value.get("tombstone") {
        Some(tombstone) => (tombstone, true),
        None => (&value["payload"], false),
    };
    let body_json =
        serde_json::to_string(body).map_err(|e| format!("payload re-serialization: {e}"))?;
    let expected = format!("{:016x}", fnv1a_64(body_json.as_bytes()));
    if hash != expected {
        return Err(format!(
            "hash mismatch at point {index}: journal says {hash}, payload hashes to {expected}"
        ));
    }
    if is_tombstone {
        let error =
            SimError::from_value(body).map_err(|e| format!("tombstone at point {index}: {e:?}"))?;
        let attempts = value["attempts"]
            .as_u64()
            .ok_or("tombstone missing \"attempts\"")? as usize;
        return Ok((index, ReplayedSlot::Tombstone { error, attempts }));
    }
    let row = R::from_value(body).map_err(|e| format!("payload at point {index}: {e:?}"))?;
    Ok((index, ReplayedSlot::Row(row)))
}

/// Per-point replayed slots plus the byte length of the journal's
/// valid prefix (see [`replay_journal`]).
type ReplayedJournal<R> = (Vec<Option<ReplayedSlot<R>>>, u64);

/// Replays a checkpoint journal: `replayed[i] = Some(row)` for every
/// point with a valid journal line, plus the byte length of the valid
/// prefix (everything up to and including the last parseable line). A
/// missing file is an empty journal. The *final* line is allowed to be
/// torn (a crash mid-append) and is simply re-run; any earlier
/// malformed or mismatched line is a typed [`ConfigError`] — it means
/// the journal belongs to a different sweep or was corrupted, and
/// silently re-running would mask that.
fn replay_journal<R: Deserialize>(
    path: &Path,
    points_len: usize,
    seeds: &[u64],
) -> Result<ReplayedJournal<R>, SimError> {
    sustain_sim_core::faultpoint!("sweep::journal_replay").map_err(SimError::from)?;
    let mut replayed: Vec<Option<ReplayedSlot<R>>> = (0..points_len).map(|_| None).collect();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((replayed, 0)),
        Err(e) => return Err(journal_io_error("reading journal", e)),
    };
    // Each non-blank line paired with the byte offset just past it, so
    // the caller can truncate a torn tail before appending.
    let mut lines: Vec<(u64, &str)> = Vec::new();
    let mut offset = 0u64;
    for raw in text.split_inclusive('\n') {
        offset += raw.len() as u64;
        let line = raw.trim();
        if !line.is_empty() {
            lines.push((offset, line));
        }
    }
    let mut valid_bytes = 0u64;
    for (pos, (end, line)) in lines.iter().enumerate() {
        match parse_journal_line::<R>(line, points_len, seeds) {
            // Later lines supersede earlier ones: a point re-run under
            // `--retry-failed` appends its fresh outcome after its
            // tombstone, and the fresh outcome wins on the next replay.
            Ok((index, slot)) => {
                replayed[index] = Some(slot);
                valid_bytes = *end;
            }
            // A torn final line is the expected crash artifact; the
            // point simply re-runs (and the tail is truncated away).
            Err(_) if pos + 1 == lines.len() => {}
            Err(message) => {
                return Err(SimError::Config(ConfigError::new(
                    "SweepJournal",
                    format!("line {}", pos + 1),
                    message,
                )))
            }
        }
    }
    Ok((replayed, valid_bytes))
}

/// Crash-resumable [`try_sweep_seeded_with_ctl`]: every completed point
/// is appended to an fsync'd JSON-lines journal at `journal_path`
/// (index, derived seed, payload hash, payload), and points already in
/// the journal are **replayed instead of re-run** — so a sweep killed
/// mid-run and restarted with the same journal produces byte-identical
/// results to an uninterrupted run (asserted by the kill-and-resume
/// test in `tests/sweep_resume.rs`).
///
/// Failed points are *not* journaled: a resume retries them (and a
/// tombstone written by the quarantining driver
/// [`try_sweep_resumable_retry`] is likewise re-run here, not
/// honored). The journal is validated against this sweep's derived
/// seeds and payload hashes; a journal from a different sweep is a
/// typed [`ConfigError`], not silent wrong results.
pub fn try_sweep_resumable<P, R, F>(
    master_seed: u64,
    points: &[P],
    journal_path: &Path,
    ctl: &RunCtl,
    f: F,
) -> Result<Vec<Result<R, SimError>>, SimError>
where
    P: Sync,
    R: Send + Serialize + Deserialize,
    F: Fn(&P, u64) -> Result<R, SimError> + Sync,
{
    let seeds: Vec<u64> = (0..points.len() as u64)
        .map(|i| point_seed(master_seed, i))
        .collect();
    // Replay runs inside the same fault boundary as appends: an
    // injected (or organic) panic while reading the journal must
    // surface as a typed error, not an unwind out of the sweep.
    let (replayed, valid_bytes) = catch_unwind(AssertUnwindSafe(|| {
        replay_journal::<R>(journal_path, points.len(), &seeds)
    }))
    .unwrap_or_else(|payload| {
        Err(journal_io_error(
            "journal replay panicked",
            panic_message(payload),
        ))
    })?;
    // A torn final line (crash mid-append) is re-run, so drop it from
    // the file before appending: otherwise a *second* crash-and-resume
    // would find the torn line mid-file and reject the journal as
    // corrupted.
    match std::fs::metadata(journal_path) {
        Ok(meta) if meta.len() > valid_bytes => {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(journal_path)
                .map_err(|e| journal_io_error("opening journal to drop a torn tail", e))?;
            file.set_len(valid_bytes)
                .map_err(|e| journal_io_error("truncating a torn journal tail", e))?;
            file.sync_data()
                .map_err(|e| journal_io_error("fsyncing a truncated journal", e))?;
        }
        _ => {}
    }
    let missing: Vec<usize> = (0..points.len())
        .filter(|&i| !matches!(replayed[i], Some(ReplayedSlot::Row(_))))
        .collect();

    let file = Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(journal_path)
            .map_err(|e| journal_io_error("opening journal", e))?,
    );
    let journal_failure: Mutex<Option<SimError>> = Mutex::new(None);
    let completed = AtomicUsize::new(points.len() - missing.len());

    let fresh: Vec<(usize, Result<R, SimError>)> = missing
        .par_iter()
        .map(|&index| {
            if let Some(reason) = ctl.cancelled_reason() {
                return (
                    index,
                    Err(SimError::Cancelled {
                        at_sim_time: SimTime::ZERO,
                        reason,
                    }),
                );
            }
            let result = run_point(index, || f(&points[index], seeds[index]));
            if let Ok(row) = &result {
                completed.fetch_add(1, Ordering::Relaxed);
                // Journal appends run inside their own fault boundary:
                // an injected panic here must stay isolated too.
                let appended = catch_unwind(AssertUnwindSafe(|| {
                    append_journal_entry(&file, index, seeds[index], row.to_value())
                }))
                .unwrap_or_else(|payload| {
                    Err(journal_io_error(
                        "journal append panicked",
                        panic_message(payload),
                    ))
                });
                if let Err(e) = appended {
                    let mut slot = journal_failure
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    if slot.is_none() {
                        *slot = Some(e);
                    }
                }
            }
            (index, result)
        })
        .collect();

    if let Some(e) = journal_failure
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .take()
    {
        return Err(e);
    }
    if let Some(reason) = ctl.cancelled_reason() {
        return Err(sweep_cancelled(
            reason,
            completed.load(Ordering::Relaxed),
            points.len(),
        ));
    }

    let mut slots: Vec<Option<Result<R, SimError>>> = replayed
        .into_iter()
        .map(|slot| match slot {
            Some(ReplayedSlot::Row(row)) => Some(Ok(row)),
            // Tombstones from the quarantining driver count as missing
            // here: this driver's contract is "failed points re-run".
            Some(ReplayedSlot::Tombstone { .. }) | None => None,
        })
        .collect();
    for (index, result) in fresh {
        slots[index] = Some(result);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                unreachable!("every sweep point is either replayed or freshly run")
            })
        })
        .collect())
}

/// Self-healing, quarantining [`try_sweep_resumable`]: the resumable
/// journal plus the retry layer plus **poison-point quarantine**.
///
/// Fresh points run under `policy` (transient failures re-execute with
/// deterministic backoff, exactly as in [`try_sweep_retry_with_ctl`]).
/// A point that *exhausts* its attempts — or fails permanently — is
/// written to the journal as a hash-validated **tombstone** record
/// carrying its terminal [`SimError`] and attempt count, so a resume
/// skips known-poison work deterministically instead of re-running it
/// forever. Passing `retry_failed = true` (the CLI's
/// `sweep --retry-failed`) re-runs tombstoned points instead; their
/// fresh outcome is appended after the tombstone and supersedes it on
/// the next replay. `Cancelled` points are never journaled and never
/// tombstoned: a shutdown mid-sweep must not quarantine healthy work.
///
/// Replayed successes come back with `attempts == 0`; skipped
/// tombstones surface the recorded error with the recorded attempt
/// count. Everything else about the journal contract (fsync'd
/// JSON-lines, torn-tail tolerance and truncation, foreign-journal
/// rejection as a typed [`ConfigError`]) is shared with
/// [`try_sweep_resumable`].
pub fn try_sweep_resumable_retry<P, R, F>(
    master_seed: u64,
    points: &[P],
    journal_path: &Path,
    ctl: &RunCtl,
    policy: &RetryPolicy,
    retry_failed: bool,
    f: F,
) -> Result<Vec<PointRun<R>>, SimError>
where
    P: Sync,
    R: Send + Serialize + Deserialize,
    F: Fn(&P, u64) -> Result<R, SimError> + Sync,
{
    let seeds: Vec<u64> = (0..points.len() as u64)
        .map(|i| point_seed(master_seed, i))
        .collect();
    let (replayed, valid_bytes) = catch_unwind(AssertUnwindSafe(|| {
        replay_journal::<R>(journal_path, points.len(), &seeds)
    }))
    .unwrap_or_else(|payload| {
        Err(journal_io_error(
            "journal replay panicked",
            panic_message(payload),
        ))
    })?;
    match std::fs::metadata(journal_path) {
        Ok(meta) if meta.len() > valid_bytes => {
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(journal_path)
                .map_err(|e| journal_io_error("opening journal to drop a torn tail", e))?;
            file.set_len(valid_bytes)
                .map_err(|e| journal_io_error("truncating a torn journal tail", e))?;
            file.sync_data()
                .map_err(|e| journal_io_error("fsyncing a truncated journal", e))?;
        }
        _ => {}
    }
    let rerun = |slot: &Option<ReplayedSlot<R>>| match slot {
        None => true,
        Some(ReplayedSlot::Row(_)) => false,
        Some(ReplayedSlot::Tombstone { .. }) => retry_failed,
    };
    let missing: Vec<usize> = (0..points.len()).filter(|&i| rerun(&replayed[i])).collect();

    let file = Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(journal_path)
            .map_err(|e| journal_io_error("opening journal", e))?,
    );
    let journal_failure: Mutex<Option<SimError>> = Mutex::new(None);
    let completed = AtomicUsize::new(
        replayed
            .iter()
            .filter(|slot| matches!(slot, Some(ReplayedSlot::Row(_))))
            .count(),
    );
    let record_journal_failure = |e: SimError| {
        let mut slot = journal_failure
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if slot.is_none() {
            *slot = Some(e);
        }
    };

    let fresh: Vec<(usize, PointRun<R>)> = missing
        .par_iter()
        .map(|&index| {
            let (result, attempts) = retry::run_with_retry(policy, seeds[index], ctl, || {
                run_point(index, || f(&points[index], seeds[index]))
            });
            // Journal the terminal outcome — success row or quarantine
            // tombstone — inside its own fault boundary. Cancellations
            // are deliberately not journaled.
            let record = match &result {
                Ok(row) => {
                    completed.fetch_add(1, Ordering::Relaxed);
                    Some(("payload", row.to_value(), None))
                }
                Err(SimError::Cancelled { .. }) => None,
                Err(terminal) => {
                    retry::note_quarantine();
                    Some(("tombstone", terminal.to_value(), Some(attempts)))
                }
            };
            if let Some((key, body, recorded_attempts)) = record {
                let appended = catch_unwind(AssertUnwindSafe(|| {
                    append_journal_record(&file, index, seeds[index], key, body, recorded_attempts)
                }))
                .unwrap_or_else(|payload| {
                    Err(journal_io_error(
                        "journal append panicked",
                        panic_message(payload),
                    ))
                });
                if let Err(e) = appended {
                    record_journal_failure(e);
                }
            }
            (index, PointRun { result, attempts })
        })
        .collect();

    if let Some(e) = journal_failure
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .take()
    {
        return Err(e);
    }
    if let Some(reason) = ctl.cancelled_reason() {
        return Err(sweep_cancelled(
            reason,
            completed.load(Ordering::Relaxed),
            points.len(),
        ));
    }

    let mut slots: Vec<Option<PointRun<R>>> = replayed
        .into_iter()
        .map(|slot| match slot {
            Some(ReplayedSlot::Row(row)) => Some(PointRun {
                result: Ok(row),
                attempts: 0,
            }),
            Some(ReplayedSlot::Tombstone { error, attempts }) => {
                if retry_failed {
                    None
                } else {
                    retry::note_tombstone_skip();
                    Some(PointRun {
                        result: Err(error),
                        attempts,
                    })
                }
            }
            None => None,
        })
        .collect();
    for (index, run) in fresh {
        slots[index] = Some(run);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                unreachable!("every sweep point is replayed, skipped, or freshly run")
            })
        })
        .collect())
}

/// Calibrated carbon trace for `(profile, days, seed)`, served from the
/// process-wide [`TraceCache`]: the first caller generates and
/// calibrates, every later caller (any thread) gets the same `Arc`.
///
/// # Panics
/// Calibration rescales the spread of *daily means*, so `days` must be
/// at least 2 (a single day has no daily-mean variance to scale).
pub fn calibrated_trace(profile: &RegionProfile, days: usize, seed: u64) -> Arc<CarbonTrace> {
    generate_calibrated_arc(profile, days, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_grid::region::Region;

    #[test]
    fn sweep_matches_serial_map() {
        let points: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| (x * x).wrapping_mul(0x9E37_79B9) as f64 / 7.0;
        let serial: Vec<f64> = points.iter().map(f).collect();
        let parallel = sweep(&points, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_seeded_is_deterministic_and_seeds_differ() {
        let points = ["a", "b", "c", "d"];
        let first = sweep_seeded(42, &points, |p, seed| (p.to_string(), seed));
        let second = sweep_seeded(42, &points, |p, seed| (p.to_string(), seed));
        assert_eq!(first, second);
        for (i, (label, seed)) in first.iter().enumerate() {
            assert_eq!(label, points[i]);
            assert_eq!(*seed, point_seed(42, i as u64));
        }
        let mut seeds: Vec<u64> = first.iter().map(|(_, s)| *s).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), points.len(), "per-point seeds must differ");
        let other = sweep_seeded(43, &points, |_, seed| seed);
        assert_ne!(other, first.iter().map(|(_, s)| *s).collect::<Vec<_>>());
    }

    #[test]
    fn memo_sweep_collapses_duplicates_and_preserves_order() {
        use std::sync::atomic::AtomicUsize;
        let points: Vec<u64> = vec![3, 7, 3, 9, 7, 3];
        let ctl = RunCtl::unlimited();
        let computed = AtomicUsize::new(0);
        let results = try_sweep_memo_with_ctl(&points, &ctl, |&x| {
            computed.fetch_add(1, Ordering::Relaxed);
            Ok(x * 100)
        })
        .unwrap();
        assert_eq!(computed.load(Ordering::Relaxed), 3, "3 distinct points");
        let rows: Vec<u64> = results.into_iter().map(Result::unwrap).collect();
        assert_eq!(rows, vec![300, 700, 300, 900, 700, 300]);
    }

    #[test]
    fn memo_sweep_matches_non_memo_on_distinct_points() {
        let points: Vec<u64> = (0..33).collect();
        let ctl = RunCtl::unlimited();
        let memo = try_sweep_memo_with_ctl(&points, &ctl, |&x| Ok::<_, SimError>(x * 3)).unwrap();
        let plain =
            try_sweep_seeded_with_ctl(1, &points, &ctl, |&x, _seed| Ok::<_, SimError>(x * 3))
                .unwrap();
        let memo: Vec<u64> = memo.into_iter().map(Result::unwrap).collect();
        let plain: Vec<u64> = plain.into_iter().map(Result::unwrap).collect();
        assert_eq!(memo, plain);
    }

    #[test]
    fn memo_sweep_duplicates_share_a_failed_representative() {
        let points: Vec<u64> = vec![5, 6, 5];
        let ctl = RunCtl::unlimited();
        let results = try_sweep_memo_with_ctl(&points, &ctl, |&x| {
            if x == 5 {
                Err(SimError::InvalidInput {
                    message: "five is out".into(),
                })
            } else {
                Ok(x)
            }
        })
        .unwrap();
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
        assert_eq!(results[0], results[2], "duplicate shares the error");
    }

    #[test]
    fn try_sweep_isolates_panicking_points() {
        let points: Vec<u64> = (0..9).collect();
        let results = try_sweep(&points, |&x| {
            assert!(x != 4, "injected failure at four");
            x * 10
        });
        assert_eq!(results.len(), points.len());
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.index, 4);
                assert!(err.message.contains("injected failure"), "{err}");
            } else {
                assert_eq!(*r, Ok(i as u64 * 10));
            }
        }
    }

    #[test]
    fn try_sweep_matches_sweep_when_nothing_panics() {
        let points: Vec<u64> = (0..64).collect();
        let f = |&x: &u64| (x * x).wrapping_mul(0x9E37_79B9) as f64 / 7.0;
        let plain = sweep(&points, f);
        let tried = try_sweep(&points, f);
        assert_eq!(
            tried.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
            plain
        );
    }

    #[test]
    fn try_sweep_seeded_uses_same_seeds_and_isolates() {
        let points = ["a", "b", "c"];
        let results = try_sweep_seeded(42, &points, |p, seed| {
            assert!(*p != "b", "poisoned point");
            seed
        });
        assert_eq!(results[0], Ok(point_seed(42, 0)));
        assert!(results[1].is_err());
        assert_eq!(results[2], Ok(point_seed(42, 2)));
        let again = try_sweep_seeded(42, &points, |p, seed| {
            assert!(*p != "b", "poisoned point");
            seed
        });
        assert_eq!(results, again, "fault isolation must stay deterministic");
    }

    #[test]
    fn point_error_converts_to_sim_error() {
        let e = PointError {
            index: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "sweep point 7 panicked: boom");
        let s: SimError = e.into();
        assert!(s.to_string().contains("sweep point 7"));
    }

    #[test]
    fn calibrated_trace_is_cached() {
        let profile = RegionProfile::january_2023(Region::Sweden);
        let a = calibrated_trace(&profile, 3, 99);
        let b = calibrated_trace(&profile, 3, 99);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn thread_knob_roundtrips() {
        // Note: global state; other tests' *results* are unaffected by
        // the thread count (order-preserving pool), only their speed.
        set_threads(3);
        assert_eq!(effective_threads(), 3);
        try_set_threads(2).unwrap();
        assert_eq!(effective_threads(), 2);
        set_threads(0);
        assert!(effective_threads() >= 1);
    }

    #[test]
    fn with_ctl_matches_try_sweep_seeded_when_unlimited() {
        let points: Vec<u64> = (0..16).collect();
        let ctl = RunCtl::unlimited();
        let via_ctl = try_sweep_seeded_with_ctl(7, &points, &ctl, |&p, seed| Ok(p ^ seed))
            .expect("unlimited ctl never cancels");
        let plain = try_sweep_seeded(7, &points, |&p, seed| p ^ seed);
        assert_eq!(via_ctl.len(), plain.len());
        for (a, b) in via_ctl.iter().zip(plain.iter()) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn with_ctl_reports_partial_progress_on_cancellation() {
        use sustain_sim_core::ctl::CancelToken;
        let points: Vec<u64> = (0..8).collect();
        let token = CancelToken::new();
        token.cancel("shutdown requested");
        let ctl = RunCtl::unlimited().with_token(token);
        let err = try_sweep_seeded_with_ctl(7, &points, &ctl, |&p, _| Ok(p)).unwrap_err();
        match &err {
            SimError::Cancelled { reason, .. } => {
                assert!(reason.contains("shutdown requested"), "{reason}");
                assert!(reason.contains("/8 sweep points completed"), "{reason}");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn with_ctl_isolates_panics_and_typed_errors_per_point() {
        let points: Vec<u64> = (0..5).collect();
        let ctl = RunCtl::unlimited();
        let results = try_sweep_seeded_with_ctl(7, &points, &ctl, |&p, _| {
            assert!(p != 1, "injected panic");
            if p == 3 {
                return Err(SimError::invalid_input("point three rejected"));
            }
            Ok(p)
        })
        .expect("no outer cancellation");
        assert_eq!(results[0], Ok(0));
        assert!(matches!(&results[1], Err(SimError::Faulted { .. })));
        assert_eq!(results[2], Ok(2));
        assert!(matches!(&results[3], Err(SimError::InvalidInput { .. })));
        assert_eq!(results[4], Ok(4));
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "sustain-sweep-journal-{}-{tag}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn resumable_sweep_journals_and_replays_byte_identically() {
        let path = temp_journal("roundtrip");
        std::fs::remove_file(&path).ok();
        let points: Vec<u64> = (0..6).collect();
        let ctl = RunCtl::unlimited();
        let f = |&p: &u64, seed: u64| Ok((p as f64 + 0.125) * (seed % 97) as f64 / 7.0);
        let first = try_sweep_resumable(11, &points, &path, &ctl, f).expect("first run");
        let journal = std::fs::read_to_string(&path).expect("journal exists");
        assert_eq!(journal.lines().count(), points.len());
        for line in journal.lines() {
            let v: Value = serde_json::from_str(line).expect("journal line is JSON");
            let index = v["index"].as_u64().expect("index");
            assert_eq!(v["seed"].as_u64(), Some(point_seed(11, index)));
        }
        // Second run replays every point: same values, nothing re-run
        // (the closure would panic if called again).
        let replayed = try_sweep_resumable(
            11,
            &points,
            &path,
            &ctl,
            |_: &u64, _| -> Result<f64, SimError> {
                panic!("no point should re-run from a complete journal")
            },
        )
        .expect("replay run");
        let first_json = serde_json::to_string(
            &first
                .iter()
                .map(|r| *r.as_ref().unwrap())
                .collect::<Vec<f64>>(),
        )
        .unwrap();
        let replay_json = serde_json::to_string(
            &replayed
                .iter()
                .map(|r| *r.as_ref().unwrap())
                .collect::<Vec<f64>>(),
        )
        .unwrap();
        assert_eq!(first_json, replay_json, "replay must be byte-identical");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resumable_sweep_retries_failed_points_and_heals() {
        let path = temp_journal("heal");
        std::fs::remove_file(&path).ok();
        let points: Vec<u64> = (0..5).collect();
        let ctl = RunCtl::unlimited();
        let broken = try_sweep_resumable(11, &points, &path, &ctl, |&p, seed| {
            assert!(p != 2, "injected crash at point two");
            Ok(p * 1000 + seed % 100)
        })
        .expect("run with one failed point");
        assert!(broken[2].is_err());
        let journal_lines = std::fs::read_to_string(&path).unwrap().lines().count();
        assert_eq!(journal_lines, 4, "failed points are not journaled");
        // Resume without the injected failure: only point 2 runs.
        let reruns = AtomicUsize::new(0);
        let healed = try_sweep_resumable(11, &points, &path, &ctl, |&p, seed| {
            reruns.fetch_add(1, Ordering::Relaxed);
            Ok(p * 1000 + seed % 100)
        })
        .expect("healing run");
        assert_eq!(reruns.load(Ordering::Relaxed), 1);
        let direct = try_sweep_seeded(11, &points, |&p, seed| p * 1000 + seed % 100);
        for (h, d) in healed.iter().zip(direct.iter()) {
            assert_eq!(h.as_ref().unwrap(), d.as_ref().unwrap());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_journal_line_is_rerun_not_an_error() {
        let path = temp_journal("torn");
        std::fs::remove_file(&path).ok();
        let points: Vec<u64> = (0..3).collect();
        let ctl = RunCtl::unlimited();
        try_sweep_resumable(11, &points, &path, &ctl, |&p, _| Ok(p * 2)).expect("seed the journal");
        // Tear the final line mid-write, as a crash would.
        let text = std::fs::read_to_string(&path).unwrap();
        let torn: String = text[..text.len() - 20].to_string();
        std::fs::write(&path, &torn).unwrap();
        let reruns = AtomicUsize::new(0);
        let resumed = try_sweep_resumable(11, &points, &path, &ctl, |&p, _| {
            reruns.fetch_add(1, Ordering::Relaxed);
            Ok(p * 2)
        })
        .expect("torn line tolerated");
        assert_eq!(
            reruns.load(Ordering::Relaxed),
            1,
            "only the torn point re-runs"
        );
        for (i, r) in resumed.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &(i as u64 * 2));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_so_a_second_crash_still_resumes() {
        let path = temp_journal("torn-twice");
        std::fs::remove_file(&path).ok();
        let points: Vec<u64> = (0..4).collect();
        let ctl = RunCtl::unlimited();
        try_sweep_resumable(11, &points, &path, &ctl, |&p, _| Ok(p * 3)).expect("seed the journal");
        // Crash one: tear the final line, resume.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 15]).unwrap();
        try_sweep_resumable(11, &points, &path, &ctl, |&p, _| Ok(p * 3)).expect("first resume");
        // The torn line must be gone: every remaining line parses, so a
        // second crash-and-resume cannot mistake it for corruption.
        let healed = std::fs::read_to_string(&path).unwrap();
        for line in healed.lines().filter(|l| !l.trim().is_empty()) {
            serde_json::from_str::<serde_json::Value>(line)
                .unwrap_or_else(|e| panic!("unparseable post-resume line {line:?}: {e}"));
        }
        // Crash two: tear again, resume again — still healable.
        std::fs::write(&path, &healed[..healed.len() - 15]).unwrap();
        let resumed = try_sweep_resumable(11, &points, &path, &ctl, |&p, _| Ok(p * 3))
            .expect("second resume after a second torn tail");
        for (i, r) in resumed.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &(i as u64 * 3));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_from_a_different_sweep_is_rejected() {
        let path = temp_journal("mismatch");
        std::fs::remove_file(&path).ok();
        let points: Vec<u64> = (0..3).collect();
        let ctl = RunCtl::unlimited();
        try_sweep_resumable(11, &points, &path, &ctl, |&p, _| Ok(p)).expect("seed the journal");
        // Same journal, different master seed: derived seeds mismatch.
        let err = try_sweep_resumable(12, &points, &path, &ctl, |&p, _| Ok(p)).unwrap_err();
        match &err {
            SimError::Config(e) => {
                assert_eq!(e.context, "SweepJournal");
                assert!(e.message.contains("different sweep"), "{e}");
            }
            other => panic!("expected Config, got {other:?}"),
        }
        // A corrupted *non-final* line is also a hard error.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines[0] = "{\"index\":0,\"seed\":1,\"hash\":\"beef\",\"payload\":0}";
        let patched = format!("{}\n", lines.join("\n"));
        std::fs::write(&path, patched).unwrap();
        let err = try_sweep_resumable(11, &points, &path, &ctl, |&p, _| Ok(p)).unwrap_err();
        assert!(matches!(err, SimError::Config(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_sweep_heals_transient_failures_byte_identically() {
        use std::collections::HashMap;
        let points: Vec<u64> = (0..6).collect();
        let ctl = RunCtl::unlimited();
        let policy = RetryPolicy::new(3, std::time::Duration::ZERO);
        // Every point fails transiently on its first attempt; the
        // healed output must equal the fault-free run's exactly.
        let failures: Mutex<HashMap<usize, usize>> = Mutex::new(HashMap::new());
        let runs = try_sweep_retry_with_ctl(7, &points, &ctl, &policy, |&p, seed| {
            let mut guard = failures.lock().unwrap();
            let count = guard.entry(p as usize).or_insert(0);
            *count += 1;
            if *count == 1 {
                return Err(SimError::Faulted {
                    unit: format!("point {p}"),
                    message: "injected transient".into(),
                });
            }
            Ok(p * 1000 + seed % 100)
        })
        .expect("no outer cancellation");
        let clean = try_sweep_seeded(7, &points, |&p, seed| p * 1000 + seed % 100);
        for (run, direct) in runs.iter().zip(clean.iter()) {
            assert_eq!(run.result.as_ref().unwrap(), direct.as_ref().unwrap());
            assert_eq!(run.attempts, 2, "one failure, one healing retry");
        }
    }

    #[test]
    fn retry_sweep_exhausts_attempts_and_keeps_other_points() {
        let points: Vec<u64> = (0..4).collect();
        let ctl = RunCtl::unlimited();
        let policy = RetryPolicy::new(2, std::time::Duration::ZERO);
        let runs = try_sweep_retry_with_ctl(7, &points, &ctl, &policy, |&p, _| {
            if p == 2 {
                return Err(SimError::Faulted {
                    unit: "point 2".into(),
                    message: "always faults".into(),
                });
            }
            Ok(p)
        })
        .expect("no outer cancellation");
        assert!(runs[2].result.is_err());
        assert_eq!(runs[2].attempts, 2, "budget of 2 fully spent");
        for (i, run) in runs.iter().enumerate() {
            if i != 2 {
                assert_eq!(run.result.as_ref().unwrap(), &(i as u64));
                assert_eq!(run.attempts, 1);
            }
        }
    }

    #[test]
    fn retry_sweep_never_retries_permanent_or_cancelled_points() {
        let points: Vec<u64> = (0..3).collect();
        let ctl = RunCtl::unlimited();
        let policy = RetryPolicy::new(5, std::time::Duration::ZERO);
        let calls = AtomicUsize::new(0);
        let runs = try_sweep_retry_with_ctl(7, &points, &ctl, &policy, |&p, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            match p {
                0 => Err(SimError::invalid_input("bad point")),
                1 => Err(SimError::Cancelled {
                    at_sim_time: SimTime::ZERO,
                    reason: "per-point deadline".into(),
                }),
                _ => Ok(p),
            }
        })
        .expect("no outer cancellation");
        assert_eq!(calls.load(Ordering::Relaxed), 3, "one call per point");
        assert_eq!(runs[0].attempts, 1);
        assert_eq!(runs[1].attempts, 1);
        assert!(matches!(
            &runs[0].result,
            Err(SimError::InvalidInput { .. })
        ));
        assert!(matches!(&runs[1].result, Err(SimError::Cancelled { .. })));
    }

    #[test]
    fn quarantined_points_are_tombstoned_and_skipped_on_resume() {
        let path = temp_journal("tombstone");
        std::fs::remove_file(&path).ok();
        let points: Vec<u64> = (0..5).collect();
        let ctl = RunCtl::unlimited();
        let policy = RetryPolicy::new(2, std::time::Duration::ZERO);
        let poison = |&p: &u64, seed: u64| {
            if p == 3 {
                return Err(SimError::Faulted {
                    unit: "point 3".into(),
                    message: "poison".into(),
                });
            }
            Ok(p * 10 + seed % 10)
        };
        let first = try_sweep_resumable_retry(11, &points, &path, &ctl, &policy, false, poison)
            .expect("first run");
        assert!(first[3].result.is_err());
        assert_eq!(first[3].attempts, 2);
        // The journal holds 4 rows + 1 tombstone, all hash-validated.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 5);
        let tombstones: Vec<&str> = text.lines().filter(|l| l.contains("tombstone")).collect();
        assert_eq!(tombstones.len(), 1);
        let v: Value = serde_json::from_str(tombstones[0]).unwrap();
        assert_eq!(v["index"].as_u64(), Some(3));
        assert_eq!(v["attempts"].as_u64(), Some(2));
        // Resume: the tombstone is skipped deterministically — the
        // closure must not run for point 3 even though it would now
        // succeed.
        let reruns = AtomicUsize::new(0);
        let resumed =
            try_sweep_resumable_retry(11, &points, &path, &ctl, &policy, false, |&p, seed| {
                reruns.fetch_add(1, Ordering::Relaxed);
                Ok(p * 10 + seed % 10)
            })
            .expect("resume");
        assert_eq!(reruns.load(Ordering::Relaxed), 0, "nothing re-runs");
        assert!(resumed[3].result.is_err());
        assert_eq!(resumed[3].attempts, 2, "recorded attempt count replays");
        let recorded = resumed[3].result.as_ref().unwrap_err();
        assert!(recorded.to_string().contains("poison"), "{recorded}");
        // --retry-failed re-runs the tombstoned point; its fresh
        // success supersedes the tombstone for every later replay.
        let healed =
            try_sweep_resumable_retry(11, &points, &path, &ctl, &policy, true, |&p, seed| {
                Ok(p * 10 + seed % 10)
            })
            .expect("retry-failed run");
        assert_eq!(
            healed[3].result.as_ref().unwrap(),
            &(30 + point_seed(11, 3) % 10)
        );
        let after = try_sweep_resumable_retry(
            11,
            &points,
            &path,
            &ctl,
            &policy,
            false,
            |_: &u64, _| -> Result<u64, SimError> { panic!("fully journaled: nothing re-runs") },
        )
        .expect("post-heal replay");
        assert!(after.iter().all(|run| run.result.is_ok()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tombstones_from_a_foreign_journal_are_rejected() {
        let path = temp_journal("foreign-tombstone");
        std::fs::remove_file(&path).ok();
        let points: Vec<u64> = (0..3).collect();
        let ctl = RunCtl::unlimited();
        let policy = RetryPolicy::new(1, std::time::Duration::ZERO);
        try_sweep_resumable_retry(11, &points, &path, &ctl, &policy, false, |&p, _| {
            if p == 1 {
                Err(SimError::Faulted {
                    unit: "point 1".into(),
                    message: "poison".into(),
                })
            } else {
                Ok(p)
            }
        })
        .expect("seed the journal");
        // A different master seed must reject the whole journal,
        // tombstone lines included.
        let err =
            try_sweep_resumable_retry(12, &points, &path, &ctl, &policy, false, |&p, _| Ok(p))
                .unwrap_err();
        assert!(matches!(&err, SimError::Config(e) if e.context == "SweepJournal"));
        // A tampered tombstone body (hash no longer matches) is corrupt.
        // Replay accepts lines in any order, so rewrite the journal
        // with the tombstone *first* — corruption of a non-final line
        // is a hard typed error, never silently re-run.
        let text = std::fs::read_to_string(&path).unwrap();
        let (tombstones, rows): (Vec<&str>, Vec<&str>) =
            text.lines().partition(|l| l.contains("tombstone"));
        assert_eq!(tombstones.len(), 1, "exactly one quarantined point");
        let doctored = tombstones[0].replace("poison", "doctored");
        assert_ne!(doctored, tombstones[0]);
        let mut reordered = vec![doctored.as_str()];
        reordered.extend(rows);
        std::fs::write(&path, format!("{}\n", reordered.join("\n"))).unwrap();
        let err =
            try_sweep_resumable_retry(11, &points, &path, &ctl, &policy, false, |&p, _| Ok(p))
                .unwrap_err();
        match &err {
            SimError::Config(e) => {
                assert_eq!(e.context, "SweepJournal");
                assert!(e.message.contains("hash mismatch"), "{e}");
            }
            other => panic!("expected Config, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plain_resumable_driver_reruns_tombstoned_points() {
        let path = temp_journal("tombstone-compat");
        std::fs::remove_file(&path).ok();
        let points: Vec<u64> = (0..3).collect();
        let ctl = RunCtl::unlimited();
        let policy = RetryPolicy::new(1, std::time::Duration::ZERO);
        try_sweep_resumable_retry(11, &points, &path, &ctl, &policy, false, |&p, _| {
            if p == 1 {
                Err(SimError::Faulted {
                    unit: "point 1".into(),
                    message: "poison".into(),
                })
            } else {
                Ok(p * 7)
            }
        })
        .expect("seed journal with a tombstone");
        // The non-quarantining driver honors its own contract: failed
        // points (tombstoned or not) re-run on resume.
        let reruns = AtomicUsize::new(0);
        let resumed = try_sweep_resumable(11, &points, &path, &ctl, |&p, _| {
            reruns.fetch_add(1, Ordering::Relaxed);
            Ok(p * 7)
        })
        .expect("plain resume");
        assert_eq!(
            reruns.load(Ordering::Relaxed),
            1,
            "only the tombstoned point"
        );
        for (i, r) in resumed.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &(i as u64 * 7));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn env_init_accepts_absent_or_valid_knob_only() {
        // The process environment is shared across the test binary, so
        // only assert properties that hold for whatever SUSTAIN_THREADS
        // the runner exported: absent → Ok(None); a valid integer →
        // Ok(Some(n)). The rejection of malformed values is asserted in
        // the subprocess CLI tests (tests/cli.rs), where the environment
        // is controlled per invocation.
        match std::env::var(THREADS_ENV) {
            Err(_) => assert_eq!(init_threads_from_env(), Ok(None)),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) => assert_eq!(init_threads_from_env(), Ok(Some(n))),
                Err(_) => assert!(init_threads_from_env().is_err()),
            },
        }
    }
}
