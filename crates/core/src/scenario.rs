//! End-to-end scenario runner: region → carbon trace → power budget →
//! scheduled workload → carbon accounting.
//!
//! A [`Scenario`] wires the whole stack together the way the paper's §3
//! envisions: the grid substrate supplies intensity, the PowerStack's
//! scaling policy turns it into a system power budget, the RJMS schedules
//! a workload under that budget, and the telemetry layer attributes
//! energy and carbon back to jobs, users, and the facility.

use crate::cache::{global_outcome_cache, OutcomeKey};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use sustain_grid::green::GreenDetector;
use sustain_grid::region::RegionProfile;
use sustain_grid::synth::generate_calibrated_arc;
use sustain_power::carbon_scaler::ScalingPolicy;
use sustain_power::pue::PueModel;
use sustain_scheduler::cluster::Cluster;
use sustain_scheduler::metrics::SimOutcome;
use sustain_scheduler::sim::{simulate, simulate_with_ctl, CheckpointCfg, Policy, SimConfig};
use sustain_sim_core::ctl::RunCtl;
use sustain_sim_core::error::{ensure_at_least, ConfigError, SimError, Validate};
use sustain_sim_core::hash::{CanonicalHash, CanonicalHasher};
use sustain_sim_core::time::{SimDuration, SimTime};
use sustain_sim_core::units::Carbon;
use sustain_telemetry::accounting::{profile_job, site_account, JobCarbonProfile, SiteAccount};
use sustain_workload::synth::{generate_arc, WorkloadConfig};

/// A complete simulation scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// The cluster.
    pub cluster: Cluster,
    /// Regional grid profile.
    pub region: RegionProfile,
    /// Simulated days of grid data (the workload spans the same window).
    pub days: usize,
    /// Workload generator configuration.
    pub workload: WorkloadConfig,
    /// Scheduling policy.
    pub policy: Policy,
    /// Multi-queue admission/priority configuration (§3.4); `None` = one
    /// FIFO queue.
    pub queues: Option<sustain_scheduler::queue::QueueSet>,
    /// Carbon-aware power-budget scaling (None = unlimited power).
    pub scaling: Option<ScalingPolicy>,
    /// Carbon-aware checkpointing.
    pub checkpoint: Option<CheckpointCfg>,
    /// Enable malleable reshaping.
    pub malleable: bool,
    /// Facility overhead model.
    pub pue: PueModel,
    /// Master seed (grid and workload derive sub-seeds).
    pub seed: u64,
}

impl Scenario {
    /// A baseline scenario: EASY backfilling, no power coupling, in the
    /// given region.
    pub fn baseline(name: impl Into<String>, region: RegionProfile, days: usize) -> Scenario {
        Scenario {
            name: name.into(),
            cluster: Cluster::new(256),
            region,
            days,
            workload: WorkloadConfig::default(),
            policy: Policy::EasyBackfill,
            queues: None,
            scaling: None,
            checkpoint: None,
            malleable: false,
            pue: PueModel::efficient_hpc(),
            seed: 2023,
        }
    }
}

impl CanonicalHash for Scenario {
    fn canonical_hash_into(&self, hasher: &mut CanonicalHasher) {
        hasher.write_str(&self.name);
        self.cluster.canonical_hash_into(hasher);
        self.region.canonical_hash_into(hasher);
        hasher.write_usize(self.days);
        self.workload.canonical_hash_into(hasher);
        self.policy.canonical_hash_into(hasher);
        self.queues.canonical_hash_into(hasher);
        self.scaling.canonical_hash_into(hasher);
        self.checkpoint.canonical_hash_into(hasher);
        hasher.write_bool(self.malleable);
        self.pue.canonical_hash_into(hasher);
        hasher.write_u64(self.seed);
    }
}

impl Validate for Scenario {
    fn validate(&self) -> Result<(), ConfigError> {
        ensure_at_least("Scenario", "days", self.days, 1)?;
        // Calibration rescales the spread of *daily means*, which needs
        // at least two days whenever the profile has synoptic variance.
        if self.region.synoptic_std > 0.0 && self.days < 2 {
            return Err(ConfigError::new(
                "Scenario",
                "days",
                "must be >= 2 to calibrate a region with synoptic variance",
            ));
        }
        ensure_at_least("Scenario", "cluster.nodes", self.cluster.nodes as usize, 1)?;
        self.region.validate().map_err(|e| e.nested("Scenario"))?;
        self.workload.validate().map_err(|e| e.nested("Scenario"))?;
        self.policy.validate().map_err(|e| e.nested("Scenario"))?;
        self.queues.validate().map_err(|e| e.nested("Scenario"))?;
        self.scaling.validate().map_err(|e| e.nested("Scenario"))?;
        self.checkpoint
            .validate()
            .map_err(|e| e.nested("Scenario"))?;
        Ok(())
    }
}

/// Everything a scenario run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Scheduling outcome (records, waits, utilization, energy, carbon).
    pub outcome: SimOutcome,
    /// Per-job carbon profiles.
    pub profiles: Vec<JobCarbonProfile>,
    /// Site-level account.
    pub site: SiteAccount,
    /// IT carbon scaled by the facility PUE.
    pub facility_carbon: Carbon,
    /// Mean grid intensity over the window, g/kWh.
    pub grid_mean_ci: f64,
}

/// Runs a scenario.
pub fn run(scenario: &Scenario) -> ScenarioResult {
    match run_inner(scenario, None) {
        Ok(result) => result,
        // With no control attached there is no cancellation point, and
        // the `scenario::run` fault site is infallible (panic-escalating).
        Err(_) => unreachable!("uncontrolled scenario run cannot be cancelled"),
    }
}

/// [`run`] under a cooperative cancellation control: checks `ctl`
/// before the (potentially cache-filling) trace generation and at
/// bucket granularity inside the event loop, returning a typed
/// [`SimError::Cancelled`] stamped with the simulation time reached.
pub fn run_with_ctl(scenario: &Scenario, ctl: &RunCtl) -> Result<ScenarioResult, SimError> {
    run_inner(scenario, Some(ctl))
}

fn run_inner(scenario: &Scenario, ctl: Option<&RunCtl>) -> Result<ScenarioResult, SimError> {
    sustain_sim_core::faultpoint!(infallible "scenario::run");
    if let Some(ctl) = ctl {
        ctl.check(SimTime::ZERO)?;
    }
    // Whole-result memoization: simulation is pure in the scenario value
    // (seed included), so a completed result can be replayed verbatim. A
    // hit clones out of the shared Arc — byte-equal to the cold run that
    // filled it. Cancelled/failed runs never reach the insert below, so
    // only values of the pure function are ever served.
    let cache = global_outcome_cache();
    let key = OutcomeKey::new(scenario);
    if let Some(hit) = cache.lookup(&key) {
        return Ok((*hit).clone());
    }
    sustain_sim_core::faultpoint!(infallible "scenario::outcome_fill");
    let result = compute_scenario(scenario, ctl)?;
    Ok((*cache.insert(key, Arc::new(result))).clone())
}

/// The actual (uncached) scenario computation: trace → workload →
/// schedule → carbon accounting.
fn compute_scenario(scenario: &Scenario, ctl: Option<&RunCtl>) -> Result<ScenarioResult, SimError> {
    // Served from the process-wide trace cache: every point of a sweep
    // that shares this (region, days, seed) window reuses one trace.
    let trace = generate_calibrated_arc(&scenario.region, scenario.days, scenario.seed);
    let horizon = SimDuration::from_days(scenario.days as f64);
    // Likewise the workload cache: sweeps that vary only policy or budget
    // parameters reuse one synthesized job set.
    let jobs = generate_arc(&scenario.workload, horizon, scenario.seed.wrapping_add(1));

    let power_budget = scenario.scaling.as_ref().map(|p| p.budget_series(&trace));
    let cfg = SimConfig {
        cluster: scenario.cluster.clone(),
        policy: scenario.policy.clone(),
        queues: scenario.queues.clone(),
        carbon_trace: Some((*trace).clone()),
        power_budget,
        checkpoint: scenario.checkpoint.clone(),
        fair_share: None,
        failures: None,
        enable_malleability: scenario.malleable,
        reshape_cost: SimDuration::from_secs(30.0),
        tick: SimDuration::from_hours(1.0),
        max_steps: 50_000_000,
    };
    let outcome = match ctl {
        Some(ctl) => simulate_with_ctl(&jobs, &cfg, ctl)?,
        // No control: the event loop skips cancellation checks entirely.
        None => simulate(&jobs, &cfg),
    };

    let detector = GreenDetector::default();
    let profiles: Vec<JobCarbonProfile> = outcome
        .records
        .iter()
        .map(|r| profile_job(r, &trace, &detector))
        .collect();
    let site = site_account(&profiles);

    // Facility carbon: IT carbon (jobs + idle) multiplied by the effective
    // PUE at the run's mean IT power.
    let total_it_energy = outcome.job_energy + outcome.idle_energy;
    let mean_it_power = if outcome.makespan.as_secs() > 0.0 {
        total_it_energy.over_duration(outcome.makespan - sustain_sim_core::time::SimTime::ZERO)
    } else {
        sustain_sim_core::units::Power::ZERO
    };
    let pue = if mean_it_power.watts() > 0.0 {
        scenario.pue.pue_at(mean_it_power)
    } else {
        1.0
    };
    let facility_carbon = outcome.carbon * pue;
    let grid_mean_ci = trace.series().stats().mean();

    Ok(ScenarioResult {
        name: scenario.name.clone(),
        outcome,
        profiles,
        site,
        facility_carbon,
        grid_mean_ci,
    })
}

/// Validated [`run`]: checks the scenario's whole configuration tree up
/// front and returns a typed [`SimError`] instead of panicking deep in
/// the stack. Prefer this at program boundaries (CLI flags, config
/// files); [`run`] remains the zero-overhead path for trusted,
/// already-validated scenarios.
pub fn try_run(scenario: &Scenario) -> Result<ScenarioResult, SimError> {
    scenario.validate()?;
    Ok(run(scenario))
}

/// [`try_run`] with a cancellation control: validates up front, then
/// runs under `ctl` like [`run_with_ctl`].
pub fn try_run_with_ctl(scenario: &Scenario, ctl: &RunCtl) -> Result<ScenarioResult, SimError> {
    scenario.validate()?;
    run_with_ctl(scenario, ctl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sustain_grid::region::Region;

    fn small_scenario() -> Scenario {
        let mut s = Scenario::baseline("test", RegionProfile::january_2023(Region::Germany), 7);
        s.cluster = Cluster::new(600);
        s
    }

    #[test]
    fn baseline_scenario_completes() {
        let r = run(&small_scenario());
        assert_eq!(r.outcome.unfinished, 0);
        assert!(!r.profiles.is_empty());
        assert_eq!(r.profiles.len(), r.outcome.records.len());
        assert!(r.site.energy.kwh() > 0.0);
        assert!(r.facility_carbon > r.outcome.carbon);
        assert!(r.grid_mean_ci > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(&small_scenario());
        let b = run(&small_scenario());
        assert_eq!(a.outcome.makespan, b.outcome.makespan);
        assert_eq!(a.site.carbon.grams(), b.site.carbon.grams());
    }

    #[test]
    fn try_run_accepts_valid_and_rejects_invalid() {
        let ok = {
            let mut s = small_scenario();
            s.days = 3;
            s
        };
        assert!(try_run(&ok).is_ok());

        let mut zero_days = small_scenario();
        zero_days.days = 0;
        let err = try_run(&zero_days).unwrap_err();
        assert!(err.to_string().contains("Scenario.days"), "{err}");

        // Cluster::new(0) asserts; a deserialized config could still
        // carry zero nodes, so build the degenerate value directly.
        let mut empty_cluster = small_scenario();
        empty_cluster.cluster = Cluster {
            nodes: 0,
            idle_node_power: sustain_sim_core::units::Power::ZERO,
        };
        assert!(try_run(&empty_cluster).is_err());

        let mut bad_workload = small_scenario();
        bad_workload.workload.arrivals_per_hour = f64::NAN;
        let err = try_run(&bad_workload).unwrap_err();
        assert!(err.to_string().contains("arrivals_per_hour"), "{err}");

        let mut one_day_synoptic = small_scenario();
        one_day_synoptic.days = 1;
        assert!(
            one_day_synoptic.region.synoptic_std > 0.0,
            "profile must exercise the calibration guard"
        );
        assert!(try_run(&one_day_synoptic).is_err());
    }

    #[test]
    fn outcome_cache_hit_is_byte_equal_to_cold_run() {
        let mut s = small_scenario();
        s.days = 3;
        s.seed = 0xCAFE_0001; // unique to this test: no cross-test interference
        let cache = global_outcome_cache();
        let before = cache.stats();
        let cold = run(&s);
        let warm = run(&s);
        let after = cache.stats();
        assert!(after.hits > before.hits, "second run must hit");
        let cold_json = serde_json::to_string(&cold).unwrap();
        let warm_json = serde_json::to_string(&warm).unwrap();
        assert_eq!(cold_json, warm_json, "hit must be byte-equal to cold run");
    }

    #[test]
    fn outcome_cache_distinguishes_any_field_change() {
        let mut s = small_scenario();
        s.days = 3;
        s.seed = 0xCAFE_0002;
        let base = OutcomeKey::new(&s);
        let mut renamed = s.clone();
        renamed.name = "other".into();
        assert_ne!(base, OutcomeKey::new(&renamed));
        let mut reseeded = s.clone();
        reseeded.seed += 1;
        assert_ne!(base, OutcomeKey::new(&reseeded));
        let mut repoliced = s.clone();
        repoliced.policy = Policy::Fcfs;
        assert_ne!(base, OutcomeKey::new(&repoliced));
        assert_eq!(base, OutcomeKey::new(&s.clone()));
    }

    #[test]
    fn cancelled_runs_are_never_cached() {
        use sustain_sim_core::ctl::{CancelToken, RunCtl};
        let mut s = small_scenario();
        s.days = 3;
        s.seed = 0xCAFE_0003;
        let token = CancelToken::new();
        token.cancel("pre-cancelled");
        let ctl = RunCtl::unlimited().with_token(token);
        let err = run_with_ctl(&s, &ctl).unwrap_err();
        assert!(matches!(err, SimError::Cancelled { .. }));
        let key = OutcomeKey::new(&s);
        assert!(
            global_outcome_cache().lookup(&key).is_none(),
            "a cancelled run must not populate the cache"
        );
    }

    #[test]
    fn carbon_scales_with_grid_intensity() {
        let clean = {
            let mut s = small_scenario();
            s.region = RegionProfile::january_2023(Region::Norway);
            run(&s)
        };
        let dirty = {
            let mut s = small_scenario();
            s.region = RegionProfile::january_2023(Region::Poland);
            run(&s)
        };
        // Same workload, same energy — carbon tracks the grid.
        assert!((clean.site.energy.kwh() - dirty.site.energy.kwh()).abs() < 1.0);
        assert!(dirty.site.carbon.grams() > 4.0 * clean.site.carbon.grams());
    }
}
