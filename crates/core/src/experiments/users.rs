//! User-facing experiments: over-allocation waste (E11a), green
//! incentives (E11b), and the Carbon500 ranking (E12).

use crate::scenario::{run, Scenario};
use crate::sweep::{calibrated_trace, sweep};
use serde::{Deserialize, Serialize};
use sustain_carbon_model::system::SystemInventory;
use sustain_grid::green::GreenDetector;
use sustain_grid::region::{Region, RegionProfile};
use sustain_power::pue::PueModel;
use sustain_scheduler::cluster::Cluster;
use sustain_scheduler::sim::Policy;
use sustain_sim_core::error::SimError;
use sustain_sim_core::time::SimDuration;
use sustain_sim_core::units::CarbonIntensity;
use sustain_telemetry::carbon500::{rank, Carbon500Entry, Carbon500Row};
use sustain_telemetry::incentive::{ElasticityModel, IncentiveScheme};
use sustain_workload::synth::WorkloadConfig;

/// One row of the E11a over-allocation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverallocationRow {
    /// Fraction of users over-allocating.
    pub overallocating_fraction: f64,
    /// Jobs completed.
    pub completed: usize,
    /// Total job energy, kWh.
    pub job_energy_kwh: f64,
    /// Total job carbon, t.
    pub job_carbon_t: f64,
    /// Median wait, hours.
    pub wait_p50_h: f64,
    /// Energy wasted on idle-but-allocated nodes, kWh (vs the 0 % case).
    pub excess_energy_kwh: f64,
    /// Carbon wasted, kg (vs the 0 % case).
    pub excess_carbon_kg: f64,
}

/// E11a — the §3.4 observation quantified: sweeping the fraction of
/// over-allocating users raises energy and carbon for the same science.
pub fn user_overallocation(region: Region, days: usize, seed: u64) -> Vec<OverallocationRow> {
    let profile = RegionProfile::january_2023(region);
    // The expensive runs fan out; the excess-vs-baseline columns need the
    // 0 % row's totals, so they are filled in a serial post-pass.
    let mut rows = sweep(&[0.0, 0.2, 0.4, 0.6], |&frac| {
        let workload = WorkloadConfig {
            arrivals_per_hour: 4.0,
            max_nodes: 128,
            overallocating_fraction: frac,
            overallocation_mean_factor: 2.5,
            ..WorkloadConfig::default()
        };
        let scenario = Scenario {
            name: format!("E11a-{frac}"),
            cluster: Cluster::new(768),
            region: profile.clone(),
            days,
            workload,
            policy: Policy::EasyBackfill,
            queues: None,
            scaling: None,
            checkpoint: None,
            malleable: false,
            pue: PueModel::efficient_hpc(),
            seed,
        };
        let r = run(&scenario);
        OverallocationRow {
            overallocating_fraction: frac,
            completed: r.outcome.records.len(),
            job_energy_kwh: r.outcome.job_energy.kwh(),
            job_carbon_t: r.outcome.carbon.tons(),
            wait_p50_h: r.outcome.wait.median / 3600.0,
            excess_energy_kwh: 0.0,
            excess_carbon_kg: 0.0,
        }
    });
    let (base_e, base_c) = (rows[0].job_energy_kwh, rows[0].job_carbon_t);
    for row in &mut rows {
        row.excess_energy_kwh = row.job_energy_kwh - base_e;
        row.excess_carbon_kg = (row.job_carbon_t - base_c) * 1000.0;
    }
    rows
}

/// Validated [`user_overallocation`]: rejects degenerate horizons with a
/// typed error instead of panicking in trace calibration.
pub fn try_user_overallocation(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<OverallocationRow>, SimError> {
    crate::experiments::ensure_horizon("E11a", days)?;
    Ok(user_overallocation(region, days, seed))
}

/// One row of the E11b incentive sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncentiveRow {
    /// Green discount depth (1 − price factor).
    pub discount: f64,
    /// Fraction of total load users shift into green windows.
    pub shifted_fraction: f64,
    /// Carbon saved per month for a 1 GWh/month site, t.
    pub monthly_saving_t: f64,
    /// Revenue (charged core-hours) relative to no-discount billing.
    pub relative_revenue: f64,
}

/// E11b — green-period incentives: deeper discounts shift more load and
/// save more carbon at the cost of billed core-hours.
pub fn green_incentives(region: Region, seed: u64) -> Vec<IncentiveRow> {
    let profile = RegionProfile::january_2023(region);
    let trace = calibrated_trace(&profile, 31, seed);
    let detector = GreenDetector::default();
    let mean_ci = trace.series().stats().mean();
    // Mean CI inside green windows.
    let periods = detector.detect(&trace);
    let green_ci = if periods.is_empty() {
        mean_ci
    } else {
        periods.iter().map(|p| p.mean_ci).sum::<f64>() / periods.len() as f64
    };
    let green_fraction_of_time = detector.green_fraction(&trace);
    let elasticity = ElasticityModel::default();
    let monthly_energy_kwh = 1.0e6; // 1 GWh/month site

    sweep(&[0.0, 0.1, 0.25, 0.5, 0.75], |&discount| {
        let shifted = elasticity.shifted_fraction(discount);
        let saving = elasticity.carbon_saving(monthly_energy_kwh, mean_ci, green_ci, discount);
        // Revenue: unshifted load pays 1.0; shifted load pays the green
        // price; load already green (≈ time fraction) also discounts.
        let green_share = (shifted + (1.0 - shifted) * green_fraction_of_time).min(1.0);
        let relative_revenue = 1.0 - discount * green_share;
        IncentiveRow {
            discount,
            shifted_fraction: shifted,
            monthly_saving_t: saving.tons(),
            relative_revenue,
        }
    })
}

/// E12 — the Carbon500 list over the modelled systems at their real (or
/// plausible) site grid intensities.
pub fn carbon500() -> Vec<Carbon500Row> {
    let life = SimDuration::from_years(5.0);
    let ci = CarbonIntensity::from_grams_per_kwh;
    let entries = vec![
        // (inventory, sustained Gflop/s, site CI)
        Carbon500Entry::from_inventory(
            &SystemInventory::supermuc_ng(),
            19_500_000.0,
            ci(20.0), // LRZ hydropower contract
            life,
        ),
        Carbon500Entry::from_inventory(
            &SystemInventory::juwels_booster(),
            44_000_000.0,
            ci(350.0), // German grid mix
            life,
        ),
        Carbon500Entry::from_inventory(&SystemInventory::hawk(), 19_300_000.0, ci(350.0), life),
        Carbon500Entry::from_inventory(
            &SystemInventory::frontier_like(),
            1_200_000_000.0,
            ci(400.0), // US Southeast mix
            life,
        ),
        Carbon500Entry::from_inventory(
            &SystemInventory::aurora_like(),
            1_000_000_000.0,
            ci(450.0),
            life,
        ),
    ];
    rank(&entries)
}

/// Demonstrates the §3.4 billing rule on a real scheduled workload:
/// total vs charged node-hours under the default 50 % green discount.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BillingDemo {
    /// Total node-hours consumed.
    pub node_hours: f64,
    /// Node-hours inside green windows.
    pub green_node_hours: f64,
    /// Node-hours charged.
    pub charged_node_hours: f64,
}

/// Runs the billing demo on a 7-day Finland scenario.
pub fn billing_demo(seed: u64) -> BillingDemo {
    let profile = RegionProfile::january_2023(Region::Finland);
    let scenario = Scenario {
        cluster: Cluster::new(512),
        seed,
        ..Scenario::baseline("billing", profile.clone(), 7)
    };
    let r = run(&scenario);
    // Same (profile, days, seed) key the scenario run used — a cache hit.
    let trace = calibrated_trace(&profile, 7, seed);
    let detector = GreenDetector::default();
    let scheme = IncentiveScheme::default();
    let mut total = 0.0;
    let mut green = 0.0;
    let mut charged = 0.0;
    for rec in &r.outcome.records {
        let bill = scheme.bill(rec, &trace, &detector);
        total += bill.node_hours;
        green += bill.green_node_hours;
        charged += bill.charged_node_hours;
    }
    BillingDemo {
        node_hours: total,
        green_node_hours: green,
        charged_node_hours: charged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// E11a headline: over-allocation wastes energy and carbon
    /// monotonically.
    #[test]
    fn e11a_overallocation_wastes_carbon() {
        let rows = user_overallocation(Region::Germany, 7, 3);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].excess_energy_kwh, 0.0);
        for w in rows.windows(2) {
            assert!(
                w[1].job_energy_kwh > w[0].job_energy_kwh,
                "energy must rise with over-allocation: {} vs {}",
                w[1].job_energy_kwh,
                w[0].job_energy_kwh
            );
        }
        let worst = rows.last().unwrap();
        assert!(worst.excess_carbon_kg > 0.0);
        // Waste is material: >10 % extra energy at 60 % over-allocators.
        assert!(worst.excess_energy_kwh > 0.1 * rows[0].job_energy_kwh);
    }

    /// E11b headline: deeper discounts shift more load and save more
    /// carbon, at declining revenue.
    #[test]
    fn e11b_incentives_monotone() {
        let rows = green_incentives(Region::Finland, 5);
        assert_eq!(rows[0].discount, 0.0);
        assert_eq!(rows[0].shifted_fraction, 0.0);
        assert_eq!(rows[0].monthly_saving_t, 0.0);
        assert!((rows[0].relative_revenue - 1.0).abs() < 1e-9);
        for w in rows.windows(2) {
            assert!(w[1].shifted_fraction > w[0].shifted_fraction);
            assert!(w[1].monthly_saving_t >= w[0].monthly_saving_t);
            assert!(w[1].relative_revenue < w[0].relative_revenue);
        }
    }

    /// E12: hydropower siting dominates the carbon-efficiency ranking even
    /// against much faster machines.
    #[test]
    fn e12_ranking_structure() {
        let rows = carbon500();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].rank, 1);
        // SuperMUC-NG (20 g hydropower) must beat the German-grid systems
        // despite lower raw performance.
        let ng_rank = rows.iter().find(|r| r.name == "SuperMUC-NG").unwrap().rank;
        let hawk_rank = rows.iter().find(|r| r.name == "Hawk").unwrap().rank;
        assert!(ng_rank < hawk_rank);
        // Every row has positive efficiency and shares in [0,1].
        for r in &rows {
            assert!(r.efficiency > 0.0);
            assert!((0.0..=1.0).contains(&r.embodied_share));
        }
    }

    /// Billing demo: some but not all node-hours are green; the discount
    /// reduces the bill accordingly.
    #[test]
    fn billing_demo_consistency() {
        let b = billing_demo(2023);
        assert!(b.node_hours > 0.0);
        assert!(b.green_node_hours > 0.0);
        assert!(b.green_node_hours < b.node_hours);
        let expected = b.node_hours - 0.5 * b.green_node_hours;
        assert!((b.charged_node_hours - expected).abs() < 1e-6);
    }
}
