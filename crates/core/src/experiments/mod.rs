//! The paper's experiment suite.
//!
//! One function per artifact of the paper (see the experiment index in
//! `DESIGN.md`): figures, tables, and every quantitative claim. Each
//! returns a typed, serializable result struct so that examples,
//! integration tests, and benches all regenerate the same rows.
//!
//! | ID  | Artifact | Function |
//! |-----|----------|----------|
//! | E1  | Fig. 1   | [`embodied::fig1_embodied_breakdown`] |
//! | E2  | Table 1  | [`embodied::table1_lrz_lifetimes`] |
//! | E3  | Fig. 2   | [`grid_exp::fig2_carbon_intensity`] |
//! | E4  | §2 rule of thumb | [`embodied::renewable_share_sweep`] |
//! | E5  | §2.3 reuse vs recycle | [`embodied::claim_reuse_vs_recycle`] |
//! | E6  | §2.1 CDP/CEP DSE | [`design::dse_carbon_metrics`] |
//! | E7  | §2.2 budget trade-off | [`design::budget_tradeoff`] |
//! | E8  | §3.1 power scaling | [`operations::carbon_aware_power_scaling`] |
//! | E9  | §3.2 malleability | [`operations::malleability_under_power`] |
//! | E10 | §3.3 scheduling+ckpt | [`operations::carbon_aware_scheduling`] |
//! | E11 | §3.4 users | [`users::user_overallocation`], [`users::green_incentives`] |
//! | E12 | §2.2 Carbon500 | [`users::carbon500`] |
//! | E13 | §2.1 chiplets | [`embodied::chiplet_packaging`] |

pub mod ablation;
pub mod design;
pub mod embodied;
pub mod grid_exp;
pub mod operations;
pub mod runtime;
pub mod users;

use sustain_sim_core::error::{ConfigError, SimError};

/// Shared horizon check for the parameterized experiments: they all
/// synthesize and *calibrate* a grid trace, and calibration rescales the
/// spread of daily means — meaningless below two days of data.
///
/// `experiment` is the paper artifact ID (`"E8"`, `"A1"`, …) so the
/// error names which entry point rejected the horizon.
fn ensure_horizon(experiment: &str, days: usize) -> Result<(), SimError> {
    if days < 2 {
        return Err(ConfigError::new(
            experiment,
            "days",
            format!("must be >= 2 to calibrate the grid trace, got {days}"),
        )
        .into());
    }
    Ok(())
}

pub use ablation::{
    backfill_flavour_sweep, checkpoint_overhead_sweep, failure_resilience_sweep,
    forecast_scaling_ablation, green_threshold_sweep, malleable_fraction_sweep,
    try_backfill_flavour_sweep, try_checkpoint_overhead_sweep, try_failure_resilience_sweep,
    try_forecast_scaling_ablation, try_green_threshold_sweep, try_malleable_fraction_sweep,
};

pub use design::{budget_tradeoff, dse_carbon_metrics};
pub use embodied::{
    chiplet_packaging, claim_reuse_vs_recycle, fig1_embodied_breakdown, lrz_embodied_dominance,
    renewable_fraction_at_half_embodied, renewable_share_sweep, table1_lrz_lifetimes,
    try_renewable_share_sweep,
};
pub use grid_exp::{average_vs_marginal_sweep, fig2_carbon_intensity};
pub use operations::{
    carbon_aware_power_scaling, carbon_aware_scheduling, malleability_under_power,
    try_carbon_aware_power_scaling, try_carbon_aware_scheduling, try_malleability_under_power,
};
pub use runtime::countdown_savings;
pub use users::{
    billing_demo, carbon500, green_incentives, try_user_overallocation, user_overallocation,
};
