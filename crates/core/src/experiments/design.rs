//! Design-time experiments: processor DSE under carbon metrics (E6) and
//! the embodied↔operational budget trade-off (E7).

use serde::{Deserialize, Serialize};
use sustain_carbon_model::budget::{
    budget_tradeoff_sweep, BudgetTradeoffRow, NodeDesign, ProcurementContext,
};
use sustain_carbon_model::dse::{default_design_space, metric_ci_sweep, DseContext};
use sustain_carbon_model::metrics::DesignMetric;
use sustain_carbon_model::process::TechnologyNode;
use sustain_sim_core::units::{Carbon, CarbonIntensity};

/// One row of the E6 table: the optimal design per (grid CI, metric).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DseRow {
    /// Grid carbon intensity, g/kWh.
    pub grid_ci: f64,
    /// Objective metric.
    pub metric: DesignMetric,
    /// Optimal node.
    pub node: TechnologyNode,
    /// Optimal core count.
    pub cores: u32,
    /// Optimal frequency, GHz.
    pub freq_ghz: f64,
    /// Metric value at the optimum.
    pub metric_value: f64,
    /// Workload carbon footprint at the optimum, kg.
    pub footprint_kg: f64,
}

/// Runs E6: optima for every metric across a grid-intensity sweep
/// (hydropower 20 → coal 1025 g/kWh).
pub fn dse_carbon_metrics() -> Vec<DseRow> {
    let space = default_design_space();
    let base = DseContext::hpc_default(CarbonIntensity::ZERO);
    let cis = [20.0, 100.0, 300.0, 600.0, 1025.0];
    metric_ci_sweep(&space, &cis, &base)
        .into_iter()
        .map(|(ci, metric, best)| DseRow {
            grid_ci: ci,
            metric,
            node: best.design.node,
            cores: best.design.cores,
            freq_ghz: best.design.freq_ghz,
            metric_value: best.metric_value,
            footprint_kg: best.footprint.total().kg(),
        })
        .collect()
}

/// E7 result: fixed-split rows plus the joint optimum, at a given site
/// grid intensity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetTradeoffResult {
    /// Site grid intensity, g/kWh.
    pub grid_ci: f64,
    /// Total carbon budget, t.
    pub budget_t: f64,
    /// Sweep rows (the last row is the joint optimum).
    pub rows: Vec<BudgetTradeoffRow>,
}

/// Runs E7 at a fairly clean site (50 g/kWh), where the trade-off is
/// live.
pub fn budget_tradeoff() -> BudgetTradeoffResult {
    let design = NodeDesign::hpc_default();
    let ctx = ProcurementContext::new(CarbonIntensity::from_grams_per_kwh(50.0));
    let budget = Carbon::from_tons(5_000.0);
    let shares = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    BudgetTradeoffResult {
        grid_ci: 50.0,
        budget_t: budget.tons(),
        rows: budget_tradeoff_sweep(budget, &design, &ctx, &shares, 4000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// E6 core claims: the optimum depends on the metric and, for carbon
    /// metrics, on the grid intensity.
    #[test]
    fn e6_optimum_varies() {
        let rows = dse_carbon_metrics();
        assert_eq!(rows.len(), 5 * DesignMetric::ALL.len());
        // At any fixed CI, Delay and CEP disagree.
        let at = |ci: f64, m: DesignMetric| {
            rows.iter()
                .find(|r| r.grid_ci == ci && r.metric == m)
                .unwrap()
        };
        let delay = at(300.0, DesignMetric::Delay);
        let cep = at(300.0, DesignMetric::Cep);
        assert!(
            delay.cores != cep.cores || delay.freq_ghz != cep.freq_ghz || delay.node != cep.node
        );
        // CDP optimum shifts between hydro and coal.
        let cdp_clean = at(20.0, DesignMetric::Cdp);
        let cdp_dirty = at(1025.0, DesignMetric::Cdp);
        assert!(
            cdp_clean.cores != cdp_dirty.cores
                || cdp_clean.freq_ghz != cdp_dirty.freq_ghz
                || cdp_clean.node != cdp_dirty.node
        );
        // Non-carbon metrics are CI-invariant.
        let edp_clean = at(20.0, DesignMetric::Edp);
        let edp_dirty = at(1025.0, DesignMetric::Edp);
        assert_eq!(edp_clean.cores, edp_dirty.cores);
        assert_eq!(edp_clean.freq_ghz, edp_dirty.freq_ghz);
        assert_eq!(edp_clean.node, edp_dirty.node);
    }

    #[test]
    fn e6_dirtier_grids_never_raise_footprint_optimum_frequency() {
        let rows = dse_carbon_metrics();
        let freqs: Vec<f64> = [20.0, 100.0, 300.0, 600.0, 1025.0]
            .iter()
            .map(|&ci| {
                rows.iter()
                    .find(|r| r.grid_ci == ci && r.metric == DesignMetric::Carbon)
                    .unwrap()
                    .freq_ghz
            })
            .collect();
        for w in freqs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "freq rose with CI: {freqs:?}");
        }
    }

    /// E7 core claim: the joint optimum beats every fixed split.
    #[test]
    fn e7_joint_dominates() {
        let r = budget_tradeoff();
        let joint = r
            .rows
            .last()
            .unwrap()
            .plan
            .as_ref()
            .expect("joint plan feasible");
        for row in &r.rows[..r.rows.len() - 1] {
            if let Some(plan) = &row.plan {
                assert!(
                    joint.total_work_exaflop >= plan.total_work_exaflop * 0.999,
                    "share {:?}: {} beats joint {}",
                    row.embodied_share,
                    plan.total_work_exaflop,
                    joint.total_work_exaflop
                );
            }
        }
        assert!(joint.total_carbon().tons() <= r.budget_t * 1.0001);
    }

    #[test]
    fn e7_extreme_splits_are_poor_or_infeasible() {
        let r = budget_tradeoff();
        let joint_work = r
            .rows
            .last()
            .unwrap()
            .plan
            .as_ref()
            .unwrap()
            .total_work_exaflop;
        // Spending 90 % on embodied leaves too little operational budget.
        let row90 = r
            .rows
            .iter()
            .find(|row| row.embodied_share == Some(0.9))
            .unwrap();
        match &row90.plan {
            None => {}
            Some(p) => assert!(p.total_work_exaflop < joint_work * 0.9),
        }
    }
}
