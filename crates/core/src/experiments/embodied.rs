//! Embodied-carbon experiments: Fig. 1 (E1), Table 1 (E2), the
//! renewable-share rule of thumb (E4), reuse-vs-recycle (E5), chiplet
//! packaging (E13), and the LRZ embodied-dominance claim.

use serde::{Deserialize, Serialize};
use sustain_carbon_model::chiplet::{
    optimize_package, ponte_vecchio_like_specs, DeploymentContext, PackageDesign,
};
use sustain_carbon_model::lifecycle::{
    lrz_system_history, reuse_vs_recycle_ratio, system_eol_study, SystemEolOutcome,
    SystemLifetimeRecord,
};
use sustain_carbon_model::memory::StorageTech;
use sustain_carbon_model::metrics::DesignMetric;
use sustain_carbon_model::system::SystemInventory;
use sustain_grid::region::{CI_COAL_G_PER_KWH, CI_HYDRO_G_PER_KWH};
use sustain_sim_core::time::SimDuration;
use sustain_sim_core::units::{Carbon, CarbonIntensity};

/// One bar group of Fig. 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Row {
    /// System name.
    pub system: String,
    /// CPU embodied carbon, tCO₂e.
    pub cpu_t: f64,
    /// GPU embodied carbon, tCO₂e.
    pub gpu_t: f64,
    /// DRAM embodied carbon, tCO₂e.
    pub dram_t: f64,
    /// Storage embodied carbon, tCO₂e.
    pub storage_t: f64,
    /// Combined memory+storage share of the total.
    pub memory_storage_share: f64,
}

/// E1 — regenerates Fig. 1: embodied carbon by component for the German
/// Top-3 systems.
pub fn fig1_embodied_breakdown() -> Vec<Fig1Row> {
    SystemInventory::german_top3()
        .iter()
        .map(|sys| {
            let b = sys.breakdown();
            Fig1Row {
                system: sys.name.clone(),
                cpu_t: b.cpu.tons(),
                gpu_t: b.gpu.tons(),
                dram_t: b.dram.tons(),
                storage_t: b.storage.tons(),
                memory_storage_share: b.memory_storage_share(),
            }
        })
        .collect()
}

/// E2 — regenerates Table 1: LRZ system lifetimes, plus the fleet's
/// amortized embodied-emission timeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// The table rows as printed in the paper.
    pub rows: Vec<SystemLifetimeRecord>,
    /// Amortized embodied tCO₂e per year, 2012–2030 (assuming each system
    /// carries a SuperMUC-NG-scale embodied footprint).
    pub amortization: Vec<(u32, f64)>,
}

/// Runs E2.
pub fn table1_lrz_lifetimes() -> Table1Result {
    let rows = lrz_system_history();
    let embodied = SystemInventory::supermuc_ng().total_embodied_with_platform();
    let records: Vec<_> = rows.iter().cloned().map(|r| (r, embodied)).collect();
    let amortization =
        sustain_carbon_model::lifecycle::fleet_amortization_timeline(&records, 5, 2012, 2030);
    Table1Result { rows, amortization }
}

/// E4 — the §2 rule of thumb: sweep the renewable share of a cloud-like
/// server's supply and find where embodied = 50 % of the total footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RenewableShareRow {
    /// Renewable fraction of the supply.
    pub renewable_fraction: f64,
    /// Effective grid intensity, g/kWh.
    pub effective_ci: f64,
    /// Embodied share of the total lifetime footprint.
    pub embodied_share: f64,
}

/// Reference cloud-like server for E4 (after Lyu et al. \[39\], whose rule
/// of thumb the paper quotes): 2.0 t embodied, 350 W average draw, 6-year
/// life, 395 g/kWh fossil supply — a US-grid-like mix.
pub fn renewable_share_sweep(steps: usize) -> Vec<RenewableShareRow> {
    assert!(steps >= 2);
    let embodied = Carbon::from_kg(2000.0);
    let avg_power_w = 350.0;
    let lifetime_h = SimDuration::from_years(6.0).as_hours();
    let fossil_ci = 395.0;
    (0..steps)
        .map(|i| {
            let r = i as f64 / (steps - 1) as f64;
            let ci = (1.0 - r) * fossil_ci; // renewables ≈ 0 g marginal
            let operational = avg_power_w / 1000.0 * lifetime_h * ci; // grams
            let total = embodied.grams() + operational;
            RenewableShareRow {
                renewable_fraction: r,
                effective_ci: ci,
                embodied_share: embodied.grams() / total,
            }
        })
        .collect()
}

/// Validated [`renewable_share_sweep`]: rejects `steps < 2` (the sweep
/// interpolates between its endpoints) with a typed error instead of
/// asserting.
pub fn try_renewable_share_sweep(
    steps: usize,
) -> Result<Vec<RenewableShareRow>, sustain_sim_core::error::SimError> {
    if steps < 2 {
        return Err(sustain_sim_core::error::SimError::invalid_input(format!(
            "E4 steps must be >= 2 to span the renewable-share axis, got {steps}"
        )));
    }
    Ok(renewable_share_sweep(steps))
}

/// The renewable fraction at which embodied crosses 50 % of the total
/// (linear interpolation over the sweep).
pub fn renewable_fraction_at_half_embodied() -> f64 {
    let rows = renewable_share_sweep(201);
    for w in rows.windows(2) {
        if w[0].embodied_share < 0.5 && w[1].embodied_share >= 0.5 {
            let t = (0.5 - w[0].embodied_share) / (w[1].embodied_share - w[0].embodied_share);
            return w[0].renewable_fraction
                + t * (w[1].renewable_fraction - w[0].renewable_fraction);
        }
    }
    1.0
}

/// E5 — reuse vs recycling: the HDD 275× anchor plus whole-system
/// strategy comparison for the three Fig. 1 systems.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReuseRecycleResult {
    /// Reuse/recycle savings ratio for nearline HDDs (paper: 275×).
    pub hdd_reuse_vs_recycle: f64,
    /// Per-system end-of-life study (5-year life, 2-year extension).
    pub systems: Vec<(String, SystemEolOutcome)>,
}

/// Runs E5.
pub fn claim_reuse_vs_recycle() -> ReuseRecycleResult {
    let systems = SystemInventory::german_top3()
        .iter()
        .map(|sys| (sys.name.clone(), system_eol_study(sys, 5.0, 2.0)))
        .collect();
    ReuseRecycleResult {
        hdd_reuse_vs_recycle: reuse_vs_recycle_ratio(StorageTech::NearlineHdd),
        systems,
    }
}

/// The §2 LRZ claim: at a hydropower supply (20 g/kWh) the embodied
/// footprint dominates the operational one; at a coal supply it does not.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LrzDominanceResult {
    /// Total embodied (components + platform), t.
    pub embodied_t: f64,
    /// 5-year operational carbon on hydropower (20 g/kWh), t.
    pub operational_hydro_t: f64,
    /// 5-year operational carbon on coal (1025 g/kWh), t.
    pub operational_coal_t: f64,
}

/// Runs the LRZ dominance check on SuperMUC-NG.
pub fn lrz_embodied_dominance() -> LrzDominanceResult {
    let sys = SystemInventory::supermuc_ng();
    let energy = sys.nominal_power.for_duration(SimDuration::from_years(5.0));
    LrzDominanceResult {
        embodied_t: sys.total_embodied_with_platform().tons(),
        operational_hydro_t: energy
            .carbon_at(CarbonIntensity::from_grams_per_kwh(CI_HYDRO_G_PER_KWH))
            .tons(),
        operational_coal_t: energy
            .carbon_at(CarbonIntensity::from_grams_per_kwh(CI_COAL_G_PER_KWH))
            .tons(),
    }
}

/// E13 — chiplet/fab package optimization at two grid intensities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChipletResult {
    /// Optimal design on a hydropower-like grid.
    pub clean_grid: PackageDesign,
    /// Optimal design on a coal-like grid.
    pub dirty_grid: PackageDesign,
}

/// Runs E13.
pub fn chiplet_packaging() -> ChipletResult {
    let specs = ponte_vecchio_like_specs();
    let clean = optimize_package(
        &specs,
        &DeploymentContext::new(CarbonIntensity::from_grams_per_kwh(CI_HYDRO_G_PER_KWH)),
        DesignMetric::Carbon,
    );
    let dirty = optimize_package(
        &specs,
        &DeploymentContext::new(CarbonIntensity::from_grams_per_kwh(CI_COAL_G_PER_KWH)),
        DesignMetric::Carbon,
    );
    ChipletResult {
        clean_grid: clean,
        dirty_grid: dirty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper anchors: Fig. 1's memory+storage shares.
    #[test]
    fn fig1_shares_match_paper() {
        let rows = fig1_embodied_breakdown();
        assert_eq!(rows.len(), 3);
        let targets = [0.435, 0.596, 0.555];
        for (row, &target) in rows.iter().zip(&targets) {
            assert!(
                (row.memory_storage_share - target).abs() < 0.015,
                "{}: {} vs {}",
                row.system,
                row.memory_storage_share,
                target
            );
        }
        // GPU bar only exists for Juwels Booster.
        assert!(rows[0].gpu_t > 0.0);
        assert_eq!(rows[1].gpu_t, 0.0);
        assert_eq!(rows[2].gpu_t, 0.0);
    }

    #[test]
    fn table1_has_five_systems() {
        let t = table1_lrz_lifetimes();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.amortization.first().unwrap().0, 2012);
        assert_eq!(t.amortization.last().unwrap().0, 2030);
        // Some years have overlapping systems → amortization > single-system.
        let max_rate = t.amortization.iter().map(|(_, v)| *v).fold(0.0, f64::max);
        let single = SystemInventory::supermuc_ng()
            .total_embodied_with_platform()
            .tons()
            / 5.0;
        assert!(max_rate > single * 1.5);
    }

    /// Paper anchor (E4): embodied hits 50 % at 70–75 % renewables.
    #[test]
    fn half_embodied_at_70_to_75_percent_renewables() {
        let r = renewable_fraction_at_half_embodied();
        assert!(
            (0.70..=0.75).contains(&r),
            "crossover at {r}, expected within [0.70, 0.75]"
        );
    }

    #[test]
    fn renewable_sweep_is_monotone() {
        let rows = renewable_share_sweep(21);
        let mut last = 0.0;
        for row in &rows {
            assert!(row.embodied_share >= last);
            last = row.embodied_share;
        }
        assert!((rows.last().unwrap().embodied_share - 1.0).abs() < 1e-9);
    }

    /// Paper anchor (E5): 275×.
    #[test]
    fn e5_anchors() {
        let r = claim_reuse_vs_recycle();
        assert!((r.hdd_reuse_vs_recycle - 275.0).abs() < 1e-9);
        for (name, outcome) in &r.systems {
            assert!(
                outcome.extension_savings > outcome.reuse_savings,
                "{name}: extension must beat reuse"
            );
            assert!(
                outcome.reuse_savings > outcome.recycle_savings * 10.0,
                "{name}: reuse must dwarf recycling"
            );
        }
    }

    /// Paper claim: embodied dominates at LRZ, not on coal.
    #[test]
    fn lrz_dominance_holds() {
        let r = lrz_embodied_dominance();
        assert!(
            r.embodied_t > r.operational_hydro_t,
            "embodied {} vs hydro {}",
            r.embodied_t,
            r.operational_hydro_t
        );
        assert!(r.operational_coal_t > 10.0 * r.embodied_t);
    }

    /// E13: the package optimum moves with the grid.
    #[test]
    fn chiplet_optimum_shifts() {
        let r = chiplet_packaging();
        assert_ne!(r.clean_grid.nodes, r.dirty_grid.nodes);
        assert!(r.dirty_grid.power.watts() <= r.clean_grid.power.watts());
    }
}
