//! E14 — application-level energy savings with a Countdown-like runtime
//! (§3.4's "utilizing application libraries such as Cesarini et al.").
//!
//! A synthetic iterative MPI application runs with and without the DVFS
//! governor; the sweep over communication fractions shows where the
//! runtime pays off and translates the saving into carbon at a region's
//! grid intensity.

use serde::{Deserialize, Serialize};
use sustain_grid::region::{Region, RegionProfile};
use sustain_sim_core::units::Carbon;
use sustain_workload::phases::{run_phases, synth_phases, CountdownGovernor, CpuFreqModel};

/// One row of the E14 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CountdownRow {
    /// Communication fraction of the application.
    pub communication_fraction: f64,
    /// Baseline energy, kWh (per node-run).
    pub baseline_kwh: f64,
    /// Energy with the governor, kWh.
    pub governed_kwh: f64,
    /// Relative energy saving.
    pub saving_fraction: f64,
    /// Relative wall-time slowdown (0 = performance-neutral).
    pub slowdown_fraction: f64,
    /// Carbon saved per run at the region's mean intensity.
    pub carbon_saved: Carbon,
}

/// Runs E14: sweeps the communication fraction of a 2 000-iteration app.
pub fn countdown_savings(region: Region, seed: u64) -> Vec<CountdownRow> {
    let mean_ci = RegionProfile::january_2023(region).mean_g_per_kwh;
    let cpu = CpuFreqModel::default();
    let on = CountdownGovernor::default();
    let off = CountdownGovernor {
        enabled: false,
        ..CountdownGovernor::default()
    };
    [0.05, 0.1, 0.2, 0.3, 0.4, 0.5]
        .iter()
        .map(|&comm| {
            let phases = synth_phases(2_000, 12.0, comm, seed);
            let governed = run_phases(&phases, &cpu, &on);
            let baseline = run_phases(&phases, &cpu, &off);
            let saving = 1.0 - governed.energy.joules() / baseline.energy.joules();
            let slowdown = governed.wall_time.as_secs() / baseline.wall_time.as_secs() - 1.0;
            let saved_kwh = baseline.energy.kwh() - governed.energy.kwh();
            CountdownRow {
                communication_fraction: comm,
                baseline_kwh: baseline.energy.kwh(),
                governed_kwh: governed.energy.kwh(),
                saving_fraction: saving,
                slowdown_fraction: slowdown,
                carbon_saved: Carbon::from_grams(saved_kwh * mean_ci),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Countdown promise: performance-neutral energy saving, growing
    /// with the communication fraction.
    #[test]
    fn e14_savings_monotone_and_neutral() {
        let rows = countdown_savings(Region::Germany, 7);
        assert_eq!(rows.len(), 6);
        let mut last = -1.0;
        for r in &rows {
            assert!(
                r.slowdown_fraction.abs() < 1e-9,
                "governor must be performance-neutral"
            );
            assert!(r.saving_fraction > last);
            assert!(r.governed_kwh < r.baseline_kwh);
            assert!(r.carbon_saved.grams() > 0.0);
            last = r.saving_fraction;
        }
        // A communication-heavy app saves a decent share.
        assert!(rows.last().unwrap().saving_fraction > 0.2);
    }

    /// Carbon saving scales with the region's intensity.
    #[test]
    fn e14_dirtier_region_saves_more_carbon() {
        let de = countdown_savings(Region::Germany, 7);
        let no = countdown_savings(Region::Norway, 7);
        for (a, b) in de.iter().zip(&no) {
            assert!((a.saving_fraction - b.saving_fraction).abs() < 1e-12);
            assert!(a.carbon_saved > b.carbon_saved);
        }
    }
}
