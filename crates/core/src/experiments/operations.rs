//! Operational experiments on the full stack: carbon-aware power-budget
//! scaling (E8), malleability under power constraints (E9), and
//! carbon-aware scheduling + checkpointing (E10).

use crate::scenario::{run, Scenario, ScenarioResult};
use crate::sweep::{calibrated_trace, sweep};
use serde::{Deserialize, Serialize};
use sustain_grid::region::{Region, RegionProfile};
use sustain_power::carbon_scaler::ScalingPolicy;
use sustain_scheduler::cluster::Cluster;
use sustain_scheduler::sim::{CarbonAwareCfg, CheckpointCfg, Policy};
use sustain_sim_core::error::SimError;
use sustain_sim_core::units::Power;
use sustain_workload::synth::WorkloadConfig;

/// The cluster used by the operational experiments. Unallocated nodes are
/// assumed powered down to a deep-sleep state (15 W) — the standard
/// companion measure to power-budget throttling; without it, idle draw
/// during throttled periods would dominate the carbon account.
fn ops_cluster() -> Cluster {
    Cluster::new(512).with_idle_power(Power::from_watts(15.0))
}

/// The workload used by the operational experiments: moderate load so
/// power capping bites without collapsing the queue.
fn ops_workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals_per_hour: 4.0,
        max_nodes: 128,
        ..WorkloadConfig::default()
    }
}

/// Compact summary of one scenario run, used by all three experiments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpsRow {
    /// Scenario label.
    pub label: String,
    /// Jobs completed.
    pub completed: usize,
    /// Total job energy, kWh.
    pub job_energy_kwh: f64,
    /// Total operational carbon (jobs + idle), t.
    pub carbon_t: f64,
    /// Emission-weighted intensity paid by job energy, g/kWh.
    pub effective_job_ci: f64,
    /// Median job wait, hours.
    pub wait_p50_h: f64,
    /// 95th-percentile job wait, hours.
    pub wait_p95_h: f64,
    /// System utilization.
    pub utilization: f64,
    /// Fraction of job energy drawn in green periods.
    pub green_energy_fraction: f64,
    /// Seconds of power-budget violation.
    pub violation_s: f64,
}

impl OpsRow {
    fn from_result(label: impl Into<String>, r: &ScenarioResult) -> OpsRow {
        OpsRow {
            label: label.into(),
            completed: r.outcome.records.len(),
            job_energy_kwh: r.outcome.job_energy.kwh(),
            carbon_t: r.outcome.carbon.tons(),
            effective_job_ci: r.outcome.effective_job_ci,
            wait_p50_h: r.outcome.wait.median / 3600.0,
            wait_p95_h: r.outcome.wait.p95 / 3600.0,
            utilization: r.outcome.utilization,
            green_energy_fraction: r.site.green_energy_fraction,
            violation_s: r.outcome.budget_violation_seconds,
        }
    }
}

/// Power envelope for the 512-node cluster (≈550 W/node mean draw): the
/// ceiling covers the whole machine; the floor throttles to ≈a third,
/// deep enough that scaling decisions genuinely move work between hours.
fn scaling_bounds() -> (Power, Power) {
    (Power::from_kw(95.0), Power::from_kw(285.0))
}

/// E8 — carbon-aware power-budget scaling: four §3.1 policies on a
/// volatile grid, with the static baseline matched to the same mean
/// budget.
pub fn carbon_aware_power_scaling(region: Region, days: usize, seed: u64) -> Vec<OpsRow> {
    let profile = RegionProfile::january_2023(region);
    let trace = calibrated_trace(&profile, days, seed);
    let mean_ci = trace.series().stats().mean();
    let (floor, ceiling) = scaling_bounds();

    let linear = ScalingPolicy::Linear {
        floor,
        ceiling,
        ci_low: mean_ci * 0.8,
        ci_high: mean_ci * 1.2,
    };
    let threshold = ScalingPolicy::Threshold {
        floor,
        ceiling,
        threshold: mean_ci,
    };
    // Match the static baseline to the linear policy's mean budget so the
    // comparison holds capacity constant.
    let linear_mean = Power::from_watts(linear.budget_series(&trace).stats().mean());
    let static_policy = ScalingPolicy::Static {
        budget: linear_mean,
    };
    let rate_cap = ScalingPolicy::CarbonRateCap {
        floor,
        ceiling,
        // Rate that the mean budget would emit at the mean CI.
        kg_per_hour: linear_mean.kw() * mean_ci / 1000.0,
    };

    // Budget-driven checkpointing only: when the scaler lowers the budget,
    // checkpointable jobs suspend to fit (the PowerStack's enforcement
    // path); CI-driven suspends are disabled so E8 isolates §3.1 from
    // §3.3.
    let budget_ckpt = CheckpointCfg {
        suspend_threshold_fraction: f64::INFINITY,
        resume_threshold_fraction: f64::INFINITY,
        ..CheckpointCfg::default()
    };
    let workload = WorkloadConfig {
        checkpointable_fraction: 0.8,
        ..ops_workload()
    };

    let policies = [
        ("static", static_policy),
        ("linear", linear),
        ("threshold", threshold),
        ("carbon-rate-cap", rate_cap),
    ];
    sweep(&policies, |(label, policy)| {
        let scenario = Scenario {
            name: format!("E8-{label}"),
            cluster: ops_cluster(),
            region: profile.clone(),
            days,
            workload: workload.clone(),
            policy: Policy::EasyBackfill,
            queues: None,
            scaling: Some(policy.clone()),
            checkpoint: Some(budget_ckpt.clone()),
            malleable: false,
            pue: sustain_power::pue::PueModel::efficient_hpc(),
            seed,
        };
        OpsRow::from_result(*label, &run(&scenario))
    })
}

/// Validated [`carbon_aware_power_scaling`]: rejects degenerate horizons
/// with a typed error instead of panicking in trace calibration.
pub fn try_carbon_aware_power_scaling(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<OpsRow>, SimError> {
    crate::experiments::ensure_horizon("E8", days)?;
    Ok(carbon_aware_power_scaling(region, days, seed))
}

/// E9 — malleability under a carbon-driven power budget: the same
/// workload run rigidly vs with §3.2 reshaping enabled.
pub fn malleability_under_power(region: Region, days: usize, seed: u64) -> Vec<OpsRow> {
    let profile = RegionProfile::january_2023(region);
    let (floor, ceiling) = scaling_bounds();
    let trace = calibrated_trace(&profile, days, seed);
    let threshold = ScalingPolicy::Threshold {
        floor,
        ceiling,
        threshold: trace.series().stats().mean(),
    };
    let workload = WorkloadConfig {
        malleable_fraction: 0.7,
        ..ops_workload()
    };
    sweep(
        &[("rigid", false), ("malleable", true)],
        |&(label, malleable)| {
            let scenario = Scenario {
                name: format!("E9-{label}"),
                cluster: ops_cluster(),
                region: profile.clone(),
                days,
                workload: workload.clone(),
                policy: Policy::EasyBackfill,
                queues: None,
                scaling: Some(threshold.clone()),
                checkpoint: None,
                malleable,
                pue: sustain_power::pue::PueModel::efficient_hpc(),
                seed,
            };
            OpsRow::from_result(label, &run(&scenario))
        },
    )
}

/// Validated [`malleability_under_power`].
pub fn try_malleability_under_power(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<OpsRow>, SimError> {
    crate::experiments::ensure_horizon("E9", days)?;
    Ok(malleability_under_power(region, days, seed))
}

/// E10 — carbon-aware scheduling and checkpointing: EASY vs the §3.3
/// green-period gate vs gate + checkpoint/suspend.
pub fn carbon_aware_scheduling(region: Region, days: usize, seed: u64) -> Vec<OpsRow> {
    let profile = RegionProfile::january_2023(region);
    let workload = WorkloadConfig {
        checkpointable_fraction: 0.6,
        ..ops_workload()
    };
    let gate = Policy::CarbonAware(CarbonAwareCfg {
        green_threshold_fraction: 0.95,
        short_job_cutoff: sustain_sim_core::time::SimDuration::from_hours(2.0),
        max_delay: sustain_sim_core::time::SimDuration::from_hours(36.0),
    });
    let configs: Vec<(&str, Policy, Option<CheckpointCfg>)> = vec![
        ("easy", Policy::EasyBackfill, None),
        ("carbon-gate", gate.clone(), None),
        ("gate+checkpoint", gate, Some(CheckpointCfg::default())),
    ];
    sweep(&configs, |(label, policy, checkpoint)| {
        let scenario = Scenario {
            name: format!("E10-{label}"),
            cluster: ops_cluster(),
            region: profile.clone(),
            days,
            workload: workload.clone(),
            policy: policy.clone(),
            queues: None,
            scaling: None,
            checkpoint: checkpoint.clone(),
            malleable: false,
            pue: sustain_power::pue::PueModel::efficient_hpc(),
            seed,
        };
        OpsRow::from_result(*label, &run(&scenario))
    })
}

/// Validated [`carbon_aware_scheduling`].
pub fn try_carbon_aware_scheduling(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<OpsRow>, SimError> {
    crate::experiments::ensure_horizon("E10", days)?;
    Ok(carbon_aware_scheduling(region, days, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// E8 headline: every carbon-aware policy pays a lower effective CI
    /// than the capacity-matched static baseline.
    #[test]
    fn e8_carbon_aware_scaling_cuts_effective_ci() {
        let rows = carbon_aware_power_scaling(Region::Finland, 10, 42);
        assert_eq!(rows.len(), 4);
        let static_row = &rows[0];
        assert!(static_row.completed > 100, "workload too small");
        for row in &rows[1..] {
            assert!(
                row.effective_job_ci < static_row.effective_job_ci,
                "{}: {} vs static {}",
                row.label,
                row.effective_job_ci,
                static_row.effective_job_ci
            );
        }
    }

    /// E9 headline: malleability reduces budget violations while keeping
    /// throughput.
    #[test]
    fn e9_malleability_tracks_budget() {
        let rows = malleability_under_power(Region::GreatBritain, 10, 7);
        let rigid = &rows[0];
        let malleable = &rows[1];
        assert!(
            malleable.violation_s < rigid.violation_s,
            "malleable {} vs rigid {}",
            malleable.violation_s,
            rigid.violation_s
        );
        // Within 15 % of the rigid throughput.
        assert!(malleable.completed as f64 >= rigid.completed as f64 * 0.85);
    }

    /// E10 headline: the green gate lowers the effective CI paid; adding
    /// checkpointing lowers it further; waits rise as the price.
    #[test]
    fn e10_carbon_aware_scheduling_shifts_energy_to_green() {
        let rows = carbon_aware_scheduling(Region::Finland, 10, 11);
        let easy = &rows[0];
        let gate = &rows[1];
        let ckpt = &rows[2];
        assert!(
            gate.effective_job_ci < easy.effective_job_ci,
            "gate {} vs easy {}",
            gate.effective_job_ci,
            easy.effective_job_ci
        );
        assert!(
            ckpt.effective_job_ci <= gate.effective_job_ci * 1.02,
            "checkpointing should not regress much: {} vs {}",
            ckpt.effective_job_ci,
            gate.effective_job_ci
        );
        assert!(gate.green_energy_fraction > easy.green_energy_fraction);
        // The price: longer waits.
        assert!(gate.wait_p95_h >= easy.wait_p95_h);
    }
}
