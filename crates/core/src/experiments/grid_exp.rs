//! E3 — regenerates Fig. 2: averaged daily marginal carbon intensities
//! across European regions in January 2023, plus the average-vs-marginal
//! demonstration behind the figure's "marginal" qualifier.

use crate::sweep::{calibrated_trace, sweep};
use serde::{Deserialize, Serialize};
use sustain_grid::marginal::MeritOrderStack;
use sustain_grid::region::{Region, RegionProfile};

/// One region's Fig. 2 series and summary statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Region name.
    pub region: String,
    /// 31 daily means, g/kWh — the plotted series.
    pub daily_means: Vec<f64>,
    /// Monthly mean, g/kWh.
    pub monthly_mean: f64,
    /// Standard deviation of the daily means.
    pub daily_std: f64,
    /// Lowest daily mean.
    pub min_daily: f64,
    /// Highest daily mean.
    pub max_daily: f64,
}

/// The full Fig. 2 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Per-region rows, in display order.
    pub rows: Vec<Fig2Row>,
    /// Finland / France monthly-mean ratio (paper: 2.1×).
    pub finland_france_ratio: f64,
    /// Finland's daily standard deviation (paper: 47.21).
    pub finland_daily_std: f64,
}

/// Runs E3: synthesizes January 2023 for every region.
pub fn fig2_carbon_intensity(seed: u64) -> Fig2Result {
    let rows: Vec<Fig2Row> = sweep(&Region::ALL, |&region| {
        let profile = RegionProfile::january_2023(region);
        let trace = calibrated_trace(&profile, 31, seed);
        let daily = trace.daily_means();
        let stats = trace.daily_stats();
        Fig2Row {
            region: region.name().to_string(),
            daily_means: daily.values().to_vec(),
            monthly_mean: stats.mean(),
            daily_std: stats.std_dev(),
            min_daily: stats.min(),
            max_daily: stats.max(),
        }
    });
    // Region::ALL always contains both headline regions.
    let monthly_mean = |name: &str| -> f64 {
        rows.iter()
            .find(|r| r.region == name)
            .map(|r| r.monthly_mean)
            .unwrap_or_else(|| panic!("{name} missing from Region::ALL sweep"))
    };
    let fi_mean = monthly_mean("Finland");
    let fr_mean = monthly_mean("France");
    let fi_std = rows
        .iter()
        .find(|r| r.region == "Finland")
        .map(|r| r.daily_std)
        .unwrap_or_else(|| panic!("Finland missing from Region::ALL sweep"));
    Fig2Result {
        finland_france_ratio: fi_mean / fr_mean,
        finland_daily_std: fi_std,
        rows,
    }
}

/// Average-vs-marginal demonstration (the figure's footnote reference):
/// `(demand_gw, average_ci, marginal_ci)` rows over a demand sweep.
pub fn average_vs_marginal_sweep() -> Vec<(f64, f64, f64)> {
    let stack = MeritOrderStack::european_winter();
    sweep(&[20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 79.0], |&gw| {
        let mw = gw * 1000.0;
        (
            gw,
            stack.average_intensity(mw).grams_per_kwh(),
            stack.marginal_intensity(mw).grams_per_kwh(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper anchors: FI/FR = 2.1×, FI daily σ = 47.21.
    #[test]
    fn fig2_anchors() {
        let r = fig2_carbon_intensity(2023);
        assert!(
            (r.finland_france_ratio - 2.1).abs() < 0.02,
            "ratio {}",
            r.finland_france_ratio
        );
        assert!(
            (r.finland_daily_std - 47.21).abs() < 0.05,
            "std {}",
            r.finland_daily_std
        );
    }

    #[test]
    fn fig2_covers_all_regions_with_31_days() {
        let r = fig2_carbon_intensity(1);
        assert_eq!(r.rows.len(), Region::ALL.len());
        for row in &r.rows {
            assert_eq!(row.daily_means.len(), 31, "{}", row.region);
            assert!(row.min_daily <= row.monthly_mean);
            assert!(row.max_daily >= row.monthly_mean);
            assert!(row.monthly_mean > 0.0);
        }
    }

    /// Fig. 2's visual message: regions differ in level *and* volatility.
    #[test]
    fn fig2_shows_level_and_volatility_spread() {
        let r = fig2_carbon_intensity(7);
        let means: Vec<f64> = r.rows.iter().map(|x| x.monthly_mean).collect();
        let max_mean = means.iter().fold(0.0f64, |a, &b| a.max(b));
        let min_mean = means.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(max_mean > 4.0 * min_mean, "levels too uniform");
        let stds: Vec<f64> = r.rows.iter().map(|x| x.daily_std).collect();
        let max_std = stds.iter().fold(0.0f64, |a, &b| a.max(b));
        let min_std = stds.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(max_std > 2.0 * min_std, "volatility too uniform");
    }

    #[test]
    fn marginal_exceeds_average_at_winter_demand() {
        let rows = average_vs_marginal_sweep();
        // At and beyond typical winter demand (≥50 GW) the marginal unit is
        // fossil.
        for (gw, avg, marg) in rows {
            if gw >= 50.0 {
                assert!(marg > avg, "at {gw} GW: marginal {marg} ≤ average {avg}");
            }
        }
    }
}
