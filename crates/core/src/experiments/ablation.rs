//! Ablation studies over the design choices of the carbon-aware policies:
//! green-gate threshold depth, checkpoint overhead, malleable adoption,
//! forecast quality, and backfilling flavour. Each sweep isolates one
//! knob of the §3 mechanisms and quantifies its trade-off curve.

use crate::experiments::operations::OpsRow;
use crate::scenario::{run, Scenario};
use crate::sweep::{calibrated_trace, sweep};
use serde::{Deserialize, Serialize};
use sustain_grid::forecast::{Forecaster, HoltWinters, Persistence, SeasonalNaive};
use sustain_grid::region::{Region, RegionProfile};
use sustain_power::carbon_scaler::ScalingPolicy;
use sustain_power::pue::PueModel;
use sustain_scheduler::cluster::Cluster;
use sustain_scheduler::sim::{CarbonAwareCfg, CheckpointCfg, Policy};
use sustain_sim_core::error::SimError;
use sustain_sim_core::time::SimDuration;
use sustain_sim_core::units::Power;
use sustain_workload::synth::WorkloadConfig;

fn ablation_cluster() -> Cluster {
    Cluster::new(512).with_idle_power(Power::from_watts(15.0))
}

fn ablation_workload() -> WorkloadConfig {
    WorkloadConfig {
        arrivals_per_hour: 4.0,
        max_nodes: 128,
        ..WorkloadConfig::default()
    }
}

fn row_from(label: String, r: &crate::scenario::ScenarioResult) -> OpsRow {
    OpsRow {
        label,
        completed: r.outcome.records.len(),
        job_energy_kwh: r.outcome.job_energy.kwh(),
        carbon_t: r.outcome.carbon.tons(),
        effective_job_ci: r.outcome.effective_job_ci,
        wait_p50_h: r.outcome.wait.median / 3600.0,
        wait_p95_h: r.outcome.wait.p95 / 3600.0,
        utilization: r.outcome.utilization,
        green_energy_fraction: r.site.green_energy_fraction,
        violation_s: r.outcome.budget_violation_seconds,
    }
}

/// A1 — green-gate threshold sweep: deeper gates (lower threshold) chase
/// cleaner hours at the cost of longer waits.
pub fn green_threshold_sweep(region: Region, days: usize, seed: u64) -> Vec<OpsRow> {
    let profile = RegionProfile::january_2023(region);
    sweep(&[0.80, 0.90, 0.95, 1.00, 1.05], |&threshold| {
        let scenario = Scenario {
            name: format!("A1-{threshold}"),
            cluster: ablation_cluster(),
            region: profile.clone(),
            days,
            workload: ablation_workload(),
            policy: Policy::CarbonAware(CarbonAwareCfg {
                green_threshold_fraction: threshold,
                short_job_cutoff: SimDuration::from_hours(2.0),
                max_delay: SimDuration::from_hours(36.0),
            }),
            queues: None,
            scaling: None,
            checkpoint: None,
            malleable: false,
            pue: PueModel::efficient_hpc(),
            seed,
        };
        row_from(format!("gate@{threshold:.2}"), &run(&scenario))
    })
}

/// A2 — checkpoint-overhead sweep: as writing a checkpoint gets more
/// expensive, the net benefit of §3.3 suspend/resume shrinks.
pub fn checkpoint_overhead_sweep(region: Region, days: usize, seed: u64) -> Vec<OpsRow> {
    let profile = RegionProfile::january_2023(region);
    let workload = WorkloadConfig {
        checkpointable_fraction: 1.0,
        ..ablation_workload()
    };
    sweep(&[1.0, 5.0, 30.0, 120.0], |&overhead_min| {
        let scenario = Scenario {
            name: format!("A2-{overhead_min}"),
            cluster: ablation_cluster(),
            region: profile.clone(),
            days,
            workload: workload.clone(),
            policy: Policy::EasyBackfill,
            queues: None,
            scaling: None,
            checkpoint: Some(CheckpointCfg {
                checkpoint_overhead: SimDuration::from_mins(overhead_min),
                restart_overhead: SimDuration::from_mins(overhead_min / 2.0),
                ..CheckpointCfg::default()
            }),
            malleable: false,
            pue: PueModel::efficient_hpc(),
            seed,
        };
        row_from(format!("ckpt-{overhead_min:.0}min"), &run(&scenario))
    })
}

/// A3 — malleable-adoption sweep: violation time under a dropping power
/// budget as a function of the malleable job fraction.
pub fn malleable_fraction_sweep(region: Region, days: usize, seed: u64) -> Vec<OpsRow> {
    let profile = RegionProfile::january_2023(region);
    let trace = calibrated_trace(&profile, days, seed);
    let threshold = ScalingPolicy::Threshold {
        floor: Power::from_kw(95.0),
        ceiling: Power::from_kw(285.0),
        threshold: trace.series().stats().mean(),
    };
    sweep(&[0.0, 0.25, 0.5, 0.75, 1.0], |&frac| {
        let scenario = Scenario {
            name: format!("A3-{frac}"),
            cluster: ablation_cluster(),
            region: profile.clone(),
            days,
            workload: WorkloadConfig {
                malleable_fraction: frac,
                ..ablation_workload()
            },
            policy: Policy::EasyBackfill,
            queues: None,
            scaling: Some(threshold.clone()),
            checkpoint: None,
            malleable: true,
            pue: PueModel::efficient_hpc(),
            seed,
        };
        row_from(format!("malleable-{:.0}%", frac * 100.0), &run(&scenario))
    })
}

/// A4 — forecast-quality ablation for §3.1: the budget follows forecast
/// CI rather than live CI; better forecasters track the live-CI policy's
/// outcome more closely.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForecastAblationRow {
    /// Forecaster label ("live" = oracle).
    pub label: String,
    /// Mean absolute budget deviation from the live-CI budget, kW.
    pub budget_mae_kw: f64,
    /// Effective CI paid by the scheduled workload, g/kWh.
    pub effective_job_ci: f64,
}

/// Runs A4.
pub fn forecast_scaling_ablation(
    region: Region,
    days: usize,
    seed: u64,
) -> Vec<ForecastAblationRow> {
    let profile = RegionProfile::january_2023(region);
    let trace = calibrated_trace(&profile, days, seed);
    let mean_ci = trace.series().stats().mean();
    let policy = ScalingPolicy::Linear {
        floor: Power::from_kw(95.0),
        ceiling: Power::from_kw(285.0),
        ci_low: mean_ci * 0.8,
        ci_high: mean_ci * 1.2,
    };
    let live = policy.budget_series(&trace);

    let run_with = |label: &str, budget: &sustain_sim_core::series::TimeSeries| {
        let mae_kw = budget
            .values()
            .iter()
            .zip(live.values())
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / live.len() as f64
            / 1000.0;
        let scenario = Scenario {
            name: format!("A4-{label}"),
            cluster: ablation_cluster(),
            region: profile.clone(),
            days,
            workload: WorkloadConfig {
                checkpointable_fraction: 0.8,
                ..ablation_workload()
            },
            policy: Policy::EasyBackfill,
            queues: None,
            scaling: None, // budget injected directly below
            checkpoint: Some(CheckpointCfg {
                suspend_threshold_fraction: f64::INFINITY,
                resume_threshold_fraction: f64::INFINITY,
                ..CheckpointCfg::default()
            }),
            malleable: false,
            pue: PueModel::efficient_hpc(),
            seed,
        };
        // Run via the simulator directly to inject the forecast budget.
        let jobs = sustain_workload::synth::generate(
            &scenario.workload,
            SimDuration::from_days(days as f64),
            seed.wrapping_add(1),
        );
        let cfg = sustain_scheduler::sim::SimConfig {
            cluster: scenario.cluster.clone(),
            policy: scenario.policy.clone(),
            queues: None,
            carbon_trace: Some((*trace).clone()),
            power_budget: Some(budget.clone()),
            checkpoint: scenario.checkpoint.clone(),
            fair_share: None,
            failures: None,
            enable_malleability: false,
            reshape_cost: SimDuration::from_secs(30.0),
            tick: SimDuration::from_hours(1.0),
            max_steps: 50_000_000,
        };
        let outcome = sustain_scheduler::sim::simulate(&jobs, &cfg);
        ForecastAblationRow {
            label: label.to_string(),
            budget_mae_kw: mae_kw,
            effective_job_ci: outcome.effective_job_ci,
        }
    };

    // Forecasting is stateful (`&mut dyn Forecaster`), so the budget
    // series are produced serially; the expensive scheduler runs then
    // fan out over the sweep driver.
    let mut forecasters: Vec<(&str, Box<dyn Forecaster>)> = vec![
        ("persistence", Box::new(Persistence::default())),
        ("seasonal-naive", Box::new(SeasonalNaive::daily())),
        ("holt-winters", Box::new(HoltWinters::daily_default())),
    ];
    let mut variants = vec![("live", live.clone())];
    for (label, fc) in forecasters.iter_mut() {
        variants.push((
            label,
            policy.budget_series_forecast(&trace, fc.as_mut(), 96),
        ));
    }
    sweep(&variants, |(label, budget)| run_with(label, budget))
}

/// A5 — backfilling flavour: FCFS vs EASY vs conservative on the same
/// workload (no carbon coupling): the classic wait/utilization trade.
pub fn backfill_flavour_sweep(region: Region, days: usize, seed: u64) -> Vec<OpsRow> {
    let profile = RegionProfile::january_2023(region);
    let flavours = [
        ("fcfs", Policy::Fcfs),
        ("easy", Policy::EasyBackfill),
        ("conservative", Policy::ConservativeBackfill),
    ];
    sweep(&flavours, |(label, policy)| {
        let scenario = Scenario {
            name: format!("A5-{label}"),
            cluster: ablation_cluster(),
            region: profile.clone(),
            days,
            workload: ablation_workload(),
            policy: policy.clone(),
            queues: None,
            scaling: None,
            checkpoint: None,
            malleable: false,
            pue: PueModel::efficient_hpc(),
            seed,
        };
        row_from(label.to_string(), &run(&scenario))
    })
}

/// One row of the A6 failure-resilience sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureRow {
    /// Per-node MTBF, days (`None` = reliable hardware baseline).
    pub node_mtbf_days: Option<f64>,
    /// Whether jobs checkpoint periodically.
    pub checkpointing: bool,
    /// Jobs completed.
    pub completed: usize,
    /// Total restarts across all jobs.
    pub restarts: u32,
    /// Total compute time (including redone work), node-free hours proxy.
    pub compute_hours: f64,
    /// Makespan, days.
    pub makespan_days: f64,
}

/// A6 — checkpointing value under node failures: sweep the per-node MTBF
/// with and without periodic checkpointing. Without checkpoints, failures
/// force full reruns and wasted compute explodes as hardware degrades.
pub fn failure_resilience_sweep(days: usize, seed: u64) -> Vec<FailureRow> {
    use sustain_scheduler::sim::{simulate, FailureModel, SimConfig};
    use sustain_sim_core::time::SimDuration as D;
    let workload = WorkloadConfig {
        arrivals_per_hour: 2.0,
        max_nodes: 64,
        checkpointable_fraction: 1.0,
        ..WorkloadConfig::default()
    };
    let jobs = sustain_workload::synth::generate(
        &workload,
        D::from_days(days as f64),
        seed.wrapping_add(1),
    );
    let combos: Vec<(Option<f64>, bool)> = [None, Some(120.0), Some(30.0), Some(10.0)]
        .iter()
        .flat_map(|&mtbf| [(mtbf, false), (mtbf, true)])
        .collect();
    sweep(&combos, |&(mtbf_days, checkpointing)| {
        let mut cfg = SimConfig::easy(ablation_cluster());
        if let Some(days) = mtbf_days {
            cfg.failures = Some(FailureModel {
                node_mtbf: D::from_days(days),
                mttr: D::from_hours(4.0),
                seed,
            });
        }
        if checkpointing {
            cfg.checkpoint = Some(CheckpointCfg {
                suspend_threshold_fraction: f64::INFINITY,
                resume_threshold_fraction: f64::INFINITY,
                ..CheckpointCfg::default()
            });
        }
        let jobs_variant: Vec<_> = jobs
            .iter()
            .cloned()
            .map(|mut j| {
                j.checkpointable = checkpointing;
                j
            })
            .collect();
        let out = simulate(&jobs_variant, &cfg);
        FailureRow {
            node_mtbf_days: mtbf_days,
            checkpointing,
            completed: out.records.len(),
            restarts: out.records.iter().map(|r| r.restarts).sum(),
            compute_hours: out
                .records
                .iter()
                .map(|r| r.compute_time().as_hours())
                .sum(),
            makespan_days: out.makespan.as_days(),
        }
    })
}

/// Validated [`green_threshold_sweep`]: rejects degenerate horizons with
/// a typed error instead of panicking in trace calibration.
pub fn try_green_threshold_sweep(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<OpsRow>, SimError> {
    crate::experiments::ensure_horizon("A1", days)?;
    Ok(green_threshold_sweep(region, days, seed))
}

/// Validated [`checkpoint_overhead_sweep`].
pub fn try_checkpoint_overhead_sweep(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<OpsRow>, SimError> {
    crate::experiments::ensure_horizon("A2", days)?;
    Ok(checkpoint_overhead_sweep(region, days, seed))
}

/// Validated [`malleable_fraction_sweep`].
pub fn try_malleable_fraction_sweep(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<OpsRow>, SimError> {
    crate::experiments::ensure_horizon("A3", days)?;
    Ok(malleable_fraction_sweep(region, days, seed))
}

/// Validated [`forecast_scaling_ablation`].
pub fn try_forecast_scaling_ablation(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<ForecastAblationRow>, SimError> {
    crate::experiments::ensure_horizon("A4", days)?;
    Ok(forecast_scaling_ablation(region, days, seed))
}

/// Validated [`backfill_flavour_sweep`].
pub fn try_backfill_flavour_sweep(
    region: Region,
    days: usize,
    seed: u64,
) -> Result<Vec<OpsRow>, SimError> {
    crate::experiments::ensure_horizon("A5", days)?;
    Ok(backfill_flavour_sweep(region, days, seed))
}

/// Validated [`failure_resilience_sweep`]: A6 needs no trace
/// calibration, but a zero-day horizon generates an empty workload and
/// every row degenerates — rejected as invalid input.
pub fn try_failure_resilience_sweep(days: usize, seed: u64) -> Result<Vec<FailureRow>, SimError> {
    if days == 0 {
        return Err(SimError::invalid_input(
            "A6 days must be >= 1 (a zero-day horizon generates no workload)",
        ));
    }
    Ok(failure_resilience_sweep(days, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A6: reliability baseline has zero restarts; under failures,
    /// checkpointing cuts redone compute.
    #[test]
    fn a6_checkpointing_pays_off_under_failures() {
        let rows = failure_resilience_sweep(3, 13);
        assert_eq!(rows.len(), 8);
        // Reliable hardware: no restarts either way.
        assert_eq!(rows[0].restarts, 0);
        assert_eq!(rows[1].restarts, 0);
        // Identical compute on reliable hardware.
        assert!((rows[0].compute_hours - rows[1].compute_hours).abs() < 1.0);
        // At the harshest MTBF, checkpointing wastes less compute than
        // full restarts.
        let plain = &rows[6];
        let ckpt = &rows[7];
        assert!(!plain.checkpointing && ckpt.checkpointing);
        assert!(plain.restarts > 0, "harsh MTBF must cause failures");
        assert!(
            ckpt.compute_hours < plain.compute_hours,
            "ckpt {} vs plain {}",
            ckpt.compute_hours,
            plain.compute_hours
        );
        assert_eq!(ckpt.completed, plain.completed);
    }

    /// A1: deeper gates buy more green energy at longer tail waits.
    #[test]
    fn a1_threshold_tradeoff() {
        let rows = green_threshold_sweep(Region::Finland, 7, 5);
        assert_eq!(rows.len(), 5);
        // The deepest gate pays the lowest effective CI of the sweep.
        let deepest = &rows[0];
        let shallowest = &rows[4];
        assert!(
            deepest.effective_job_ci <= shallowest.effective_job_ci,
            "deepest {} vs shallowest {}",
            deepest.effective_job_ci,
            shallowest.effective_job_ci
        );
        // And a longer or equal tail wait.
        assert!(deepest.wait_p95_h >= shallowest.wait_p95_h * 0.99);
        // All complete the same workload.
        for r in &rows {
            assert_eq!(r.completed, rows[0].completed);
        }
    }

    /// A2: heavier checkpoints burn more energy for the same science.
    #[test]
    fn a2_checkpoint_overhead_costs_energy() {
        let rows = checkpoint_overhead_sweep(Region::Finland, 7, 5);
        assert_eq!(rows.len(), 4);
        let cheap = &rows[0];
        let dear = &rows[3];
        assert!(
            dear.job_energy_kwh >= cheap.job_energy_kwh,
            "2h checkpoints ({}) should not use less energy than 1min ({})",
            dear.job_energy_kwh,
            cheap.job_energy_kwh
        );
    }

    /// A3: more malleable jobs → monotonically fewer budget violations.
    #[test]
    fn a3_malleability_cuts_violations() {
        let rows = malleable_fraction_sweep(Region::GreatBritain, 7, 7);
        assert_eq!(rows.len(), 5);
        let first = rows.first().unwrap();
        let last = rows.last().unwrap();
        assert!(
            last.violation_s < first.violation_s * 0.7,
            "full malleability ({}) should cut violations vs none ({})",
            last.violation_s,
            first.violation_s
        );
    }

    /// A4: forecast-driven budgets approximate the live-CI policy; better
    /// forecasters deviate less.
    #[test]
    fn a4_forecast_quality_ordering() {
        let rows = forecast_scaling_ablation(Region::Finland, 7, 9);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label, "live");
        assert_eq!(rows[0].budget_mae_kw, 0.0);
        for r in &rows[1..] {
            assert!(r.budget_mae_kw > 0.0);
            // Forecast errors are bounded by the budget span (190 kW).
            assert!(r.budget_mae_kw < 190.0);
        }
    }

    /// A5: EASY dominates FCFS on mean wait; conservative sits between on
    /// backfilling aggressiveness.
    #[test]
    fn a5_backfill_flavours() {
        let rows = backfill_flavour_sweep(Region::Germany, 7, 3);
        let (fcfs, easy, cons) = (&rows[0], &rows[1], &rows[2]);
        assert!(easy.wait_p50_h <= fcfs.wait_p50_h * 1.001);
        assert!(cons.wait_p50_h <= fcfs.wait_p50_h * 1.001);
        for r in &rows {
            assert_eq!(r.completed, fcfs.completed);
        }
    }
}
