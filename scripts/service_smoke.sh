#!/usr/bin/env bash
# Smoke test for the experiment service: start `serve` on loopback,
# exercise /healthz, /run, and /stats with curl, then shut down via
# POST /shutdown while a request is in flight and assert the drain
# completed (the in-flight request still got its full response).
#
# Usage: scripts/service_smoke.sh [path-to-sustain-hpc-binary]
set -euo pipefail

BIN="${1:-target/release/sustain-hpc}"
ADDR="127.0.0.1:8725"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "SMOKE FAIL: $*" >&2
    exit 1
}

[[ -x "$BIN" ]] || fail "binary $BIN not found (build with: cargo build --release)"

"$BIN" serve --addr "$ADDR" --threads 2 2>"$WORKDIR/server.log" &
SERVER_PID=$!

# Wait for the listener to come up.
for _ in $(seq 1 100); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited early: $(cat "$WORKDIR/server.log")"
    sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q '"ok"' || fail "/healthz did not report ok"
echo "healthz: ok"

# /run twice: both must succeed and be byte-identical (same request,
# same bytes — the determinism contract over HTTP).
REQ='{"days": 2, "nodes": 600, "policy": "carbon"}'
curl -sf -X POST -d "$REQ" "$BASE/run" >"$WORKDIR/run1.json" || fail "/run request 1 failed"
curl -sf -X POST -d "$REQ" "$BASE/run" >"$WORKDIR/run2.json" || fail "/run request 2 failed"
cmp "$WORKDIR/run1.json" "$WORKDIR/run2.json" || fail "identical /run requests returned different bytes"
grep -q '"outcome"' "$WORKDIR/run1.json" || fail "/run body is missing the outcome"
echo "run: deterministic"

# Typed 400 on malformed JSON.
STATUS=$(curl -s -o "$WORKDIR/bad.json" -w '%{http_code}' -X POST -d '{nope' "$BASE/run")
[[ "$STATUS" == "400" ]] || fail "malformed JSON returned $STATUS, want 400"
grep -q '"bad_request"' "$WORKDIR/bad.json" || fail "400 body is not typed: $(cat "$WORKDIR/bad.json")"
echo "errors: typed"

# /stats must reflect the traffic and expose the shared caches.
curl -sf "$BASE/stats" >"$WORKDIR/stats.json" || fail "/stats failed"
grep -q '"trace_cache"' "$WORKDIR/stats.json" || fail "/stats is missing trace_cache"
grep -q '"hot_path"' "$WORKDIR/stats.json" || fail "/stats is missing hot_path"
grep -q 'POST /run' "$WORKDIR/stats.json" || fail "/stats is not tracking POST /run"
echo "stats: ok"

# Graceful drain: fire a request in the background, ask for shutdown,
# and require the in-flight request to still complete with a full body.
curl -sf -X POST -d '{"days": 3}' "$BASE/run" >"$WORKDIR/inflight.json" &
INFLIGHT_PID=$!
sleep 0.2
curl -sf -X POST "$BASE/shutdown" | grep -q '"draining"' || fail "/shutdown did not acknowledge"
wait "$INFLIGHT_PID" || fail "in-flight request was dropped during shutdown"
grep -q '"outcome"' "$WORKDIR/inflight.json" || fail "drained response is incomplete"

# The server process itself must exit cleanly after the drain.
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    fail "server did not exit after /shutdown"
fi
wait "$SERVER_PID" 2>/dev/null || fail "server exited nonzero"
SERVER_PID=""
grep -q "drained" "$WORKDIR/server.log" || fail "server log is missing the drain confirmation"
echo "shutdown: drained cleanly"

echo "SMOKE PASS"
